//! Loop kernels modelled on the MiBench benchmarks evaluated in the paper:
//! `sha`, `sha2`, `gsm`, `patricia`, `bitcount`, `basicmath`,
//! `stringsearch`.
//!
//! Each function reconstructs the data-flow structure of the corresponding
//! pragma-annotated loop body (op mix, dependence chains, loop-carried
//! recurrences); see DESIGN.md for the substitution rationale.

use crate::build::Ctx;
use crate::Kernel;
use satmapit_dfg::Op;

/// SHA-1 style round (lightened to a 3-word working state, as a compiler
/// would after keeping the remaining state in memory):
/// `a' = rol5(a) + (b^c) + w[i] + K`, with `b' = a`, `c' = ror2(b)`.
pub fn sha() -> Kernel {
    let mut c = Ctx::new("sha");
    let i = c.induction(0, 1);
    let w = c.load_at(i, 0);

    // Working state (reads are all from the previous round).
    let a_new = c.raw(Op::Add); // filled at the end: a' = t2 + rol5(a)
    let b_new = c.state_from_prev(a_new, 0x67452301);
    let c_new = c.raw(Op::Ror); // c' = ror(b, 2)
    let c2 = c.konst(2);
    c.wire_prev(b_new, c_new, 0, 0xEFCDAB89);
    c.wire(c2, c_new, 1);

    // f = b ^ c (parity-round flavour), reads from the previous round.
    let f = c.raw(Op::Xor);
    c.wire_prev(b_new, f, 0, 0xEFCDAB89);
    c.wire_prev(c_new, f, 1, 0x98BADCFE);

    // wk = w + K; t2 = f + wk; a' = t2 + rol5(a).
    let wk = c.op_imm(Op::Add, w, 0x5A827999);
    let t2 = c.op(Op::Add, &[f, wk]);
    let rol5 = c.raw(Op::Ror);
    let c27 = c.konst(27);
    c.wire_prev(a_new, rol5, 0, 0x67452301);
    c.wire(c27, rol5, 1);
    c.wire(t2, a_new, 0);
    c.wire(rol5, a_new, 1);

    let _st = c.store_at(i, 64, a_new);

    Kernel::new(
        c.finish(),
        "SHA-1 round: rotate/xor/add chain over 3-word rotating state",
        16,
    )
}

/// SHA-256 style round fragment: `Σ1`-lite rotations plus a choose-like
/// mix over a 2-word rotating state (`f' = e`), the rest of the working
/// state living in memory as a compiler would keep it.
pub fn sha2() -> Kernel {
    let mut c = Ctx::new("sha2");
    let i = c.induction(0, 1);
    let w = c.load_at(i, 0);
    let wk = c.op_imm(Op::Add, w, 0x428A2F98);

    let e_new = c.raw(Op::Add); // e' = ch + s1, filled below
    let f_new = c.state_from_prev(e_new, 0x510E527F);

    // Σ1-lite: s1 = ror(e, 6) ^ ror(e, 11), reads from the previous round.
    let r1a = c.raw(Op::Ror);
    let c6 = c.konst(6);
    c.wire_prev(e_new, r1a, 0, 0x510E527F);
    c.wire(c6, r1a, 1);
    let r1b = c.raw(Op::Ror);
    let c11 = c.konst(11);
    c.wire_prev(e_new, r1b, 0, 0x510E527F);
    c.wire(c11, r1b, 1);
    let s1 = c.op(Op::Xor, &[r1a, r1b]);

    // Choose-like mix: ch = (e & f) ^ wk; e' = ch + s1.
    let ef = c.raw(Op::And);
    c.wire_prev(e_new, ef, 0, 0x510E527F);
    c.wire_prev(f_new, ef, 1, 0x9B05688C);
    let ch = c.op(Op::Xor, &[ef, wk]);
    c.wire(ch, e_new, 0);
    c.wire(s1, e_new, 1);

    let _st = c.store_at(i, 64, e_new);

    Kernel::new(
        c.finish(),
        "SHA-256 round fragment: sigma rotations and choose mix over 2-word state",
        16,
    )
}

/// GSM add with saturation: `out[i] = clamp(a[i] + b[i], MIN, MAX)`.
pub fn gsm() -> Kernel {
    let mut c = Ctx::new("gsm");
    let i = c.induction(0, 1);
    let a = c.load_at(i, 0);
    let b = c.load_at(i, 32);
    let sum = c.op(Op::Add, &[a, b]);
    let lo = c.op_imm(Op::Max, sum, -32768);
    let hi = c.op_imm(Op::Min, lo, 32767);
    // Track the saturation count like gsm_add's overflow bookkeeping.
    let changed = c.op(Op::Ne, &[hi, sum]);
    let satcnt = c.accumulate(Op::Add, changed, 0);
    let _ = satcnt;
    let _st = c.store_at(i, 64, hi);
    Kernel::new(
        c.finish(),
        "GSM saturated add: dual stream loads, clamp, saturation counter",
        16,
    )
}

/// Patricia-trie traversal step: bit extraction from the key selects one
/// of two child pointers; a hash of the visited node is emitted.
pub fn patricia() -> Kernel {
    let mut c = Ctx::new("patricia");
    let i = c.induction(0, 1);
    let key = c.load_at(i, 0);
    // bit = (key >> (key & 31)) & 1
    let bitoff = c.op_imm(Op::And, key, 31);
    let shifted = c.op(Op::Shr, &[key, bitoff]);
    let bit = c.op_imm(Op::And, shifted, 1);
    // Child pointers.
    let left = c.load_at(i, 32);
    let right = c.load_at(i, 48);
    let next = c.op(Op::Select, &[bit, left, right]);
    // Prefix comparison and match counter.
    let hit = c.op(Op::Eq, &[next, key]);
    let _hits = c.accumulate(Op::Add, hit, 0);
    // Node hash: mix the key with the taken pointer.
    let mixed = c.op(Op::Xor, &[key, next]);
    let h1 = c.op_imm(Op::Mul, mixed, 0x9E3779B1);
    let h2 = c.op_imm(Op::Shr, h1, 16);
    let h3 = c.op(Op::Xor, &[h2, next]);
    // Walk depth estimate: depth = depth_prev + (bit ^ 1).
    let inv = c.op_imm(Op::Xor, bit, 1);
    let _depth = c.accumulate(Op::Add, inv, 0);
    let _st = c.store_at(i, 96, h3);
    Kernel::new(
        c.finish(),
        "Patricia trie step: bit test, child select, node hash, depth/match counters",
        16,
    )
}

/// Bitcount inner loop (`bitcount()` from MiBench): two rounds of the
/// parallel popcount reduction plus an accumulator.
pub fn bitcount() -> Kernel {
    let mut c = Ctx::new("bitcount");
    let i = c.induction(0, 1);
    let x = c.load_at(i, 0);
    // x1 = x - ((x >> 1) & 0x5555...)
    let s1 = c.op_imm(Op::Shr, x, 1);
    let m1 = c.op_imm(Op::And, s1, 0x5555_5555_5555_5555);
    let x1 = c.op(Op::Sub, &[x, m1]);
    // x2 = (x1 & 0x3333..) + ((x1 >> 2) & 0x3333..)
    let a2 = c.op_imm(Op::And, x1, 0x3333_3333_3333_3333);
    let s2 = c.op_imm(Op::Shr, x1, 2);
    let b2 = c.op_imm(Op::And, s2, 0x3333_3333_3333_3333);
    let x2 = c.op(Op::Add, &[a2, b2]);
    let total = c.accumulate(Op::Add, x2, 0);
    let _st = c.store_at(i, 64, total);
    Kernel::new(
        c.finish(),
        "bitcount: two rounds of tree popcount with running total",
        16,
    )
}

/// Basicmath's unit conversion loop: `rad[i] = deg[i] * 2Q15(pi/180)`
/// in fixed point, with a running checksum.
pub fn basicmath() -> Kernel {
    let mut c = Ctx::new("basicmath");
    let i = c.induction(0, 1);
    let deg = c.load_at(i, 0);
    let scaled = c.op_imm(Op::Mul, deg, 572); // pi/180 in Q15
    let rad = c.op_imm(Op::Shr, scaled, 15);
    let _sum = c.accumulate(Op::Add, rad, 0);
    let _st = c.store_at(i, 64, rad);
    Kernel::new(
        c.finish(),
        "basicmath: fixed-point degree-to-radian conversion with checksum",
        16,
    )
}

/// Stringsearch inner comparison: case-mask compare of pattern and text
/// bytes, tracking the last match position.
pub fn stringsearch() -> Kernel {
    let mut c = Ctx::new("stringsearch");
    let i = c.induction(0, 1);
    let text = c.load_at(i, 0);
    let pat = c.load_at(i, 32);
    // Case-insensitive-ish compare: (text | 0x20) == (pat | 0x20).
    let tl = c.op_imm(Op::Or, text, 0x20);
    let pl = c.op_imm(Op::Or, pat, 0x20);
    let eq = c.op(Op::Eq, &[tl, pl]);
    // last = eq ? i : last_prev
    let last = c.raw(Op::Select);
    c.wire(eq, last, 0);
    c.wire(i, last, 1);
    c.wire_prev(last, last, 2, -1);
    let _matches = c.accumulate(Op::Add, eq, 0);
    let _st = c.store_at(i, 64, last);
    Kernel::new(
        c.finish(),
        "stringsearch: masked byte compare with last-match recurrence",
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::interp::interpret;

    #[test]
    fn all_mibench_kernels_validate_and_run() {
        for k in [
            sha(),
            sha2(),
            gsm(),
            patricia(),
            bitcount(),
            basicmath(),
            stringsearch(),
        ] {
            assert!(k.dfg.validate().is_ok(), "{}", k.dfg.name());
            let r = interpret(&k.dfg, k.memory.clone(), k.sim_iterations).unwrap();
            assert_eq!(r.values.len() as u32, k.sim_iterations);
        }
    }

    #[test]
    fn gsm_saturates() {
        let k = gsm();
        let mut mem = k.memory.clone();
        mem[0] = 30000;
        mem[32] = 30000; // a[0] + b[0] overflows 16-bit
        mem[1] = 10;
        mem[33] = -20;
        let r = interpret(&k.dfg, mem, 2).unwrap();
        assert_eq!(r.memory[64], 32767, "saturated");
        assert_eq!(r.memory[65], -10, "untouched");
    }

    #[test]
    fn bitcount_counts_bits() {
        let k = bitcount();
        let mut mem = vec![0i64; 128];
        mem[0] = 0b1011; // 3 bits
        mem[1] = 0b1111; // 4 bits
        let r = interpret(&k.dfg, mem, 2).unwrap();
        // Two popcount rounds fully reduce nibble-sized inputs.
        assert_eq!(r.memory[64], 3);
        assert_eq!(r.memory[65], 3 + 4);
    }

    #[test]
    fn stringsearch_tracks_last_match() {
        let k = stringsearch();
        let mut mem = vec![0i64; 128];
        // text = "abcd", pattern = "axcx"
        for (j, (t, p)) in [(97, 97), (98, 120), (99, 99), (100, 121)]
            .iter()
            .enumerate()
        {
            mem[j] = *t;
            mem[32 + j] = *p;
        }
        let r = interpret(&k.dfg, mem, 4).unwrap();
        assert_eq!(&r.memory[64..68], &[0, 0, 2, 2], "last match index");
    }

    #[test]
    fn sha_state_evolves_deterministically() {
        let k = sha();
        let r1 = interpret(&k.dfg, k.memory.clone(), 8).unwrap();
        let r2 = interpret(&k.dfg, k.memory.clone(), 8).unwrap();
        assert_eq!(r1.memory, r2.memory);
        // Output column actually written.
        assert!(r1.memory[64..72].iter().any(|&v| v != k.memory[64]));
    }
}
