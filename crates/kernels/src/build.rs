//! A small construction DSL used by the kernel definitions.

use satmapit_dfg::{Dfg, NodeId, Op};

/// Incremental DFG builder with convenience helpers for the patterns that
/// dominate loop kernels: constants, induction variables, array accesses
/// and loop-carried state.
#[derive(Debug)]
pub struct Ctx {
    dfg: Dfg,
}

impl Ctx {
    /// Starts a kernel named `name`.
    pub fn new(name: &str) -> Ctx {
        Ctx {
            dfg: Dfg::new(name),
        }
    }

    /// A constant node.
    pub fn konst(&mut self, value: i64) -> NodeId {
        self.dfg.add_const(value)
    }

    /// A node whose operands are all intra-iteration values, in slot order.
    pub fn op(&mut self, op: Op, inputs: &[NodeId]) -> NodeId {
        assert_eq!(inputs.len(), op.arity(), "arity mismatch for {op}");
        let n = self.dfg.add_node(op);
        for (slot, &src) in inputs.iter().enumerate() {
            self.dfg.add_edge(src, n, slot as u8);
        }
        n
    }

    /// A node created with *no* operands wired yet; use [`Ctx::wire`] /
    /// [`Ctx::wire_prev`] to fill its slots (needed for cyclic
    /// loop-carried state).
    pub fn raw(&mut self, op: Op) -> NodeId {
        self.dfg.add_node(op)
    }

    /// Wires an intra-iteration edge into `dst`'s `slot`.
    pub fn wire(&mut self, src: NodeId, dst: NodeId, slot: u8) {
        self.dfg.add_edge(src, dst, slot);
    }

    /// Wires a loop-carried (distance-1) edge into `dst`'s `slot`, with the
    /// pre-loop live-in `init`.
    pub fn wire_prev(&mut self, src: NodeId, dst: NodeId, slot: u8, init: i64) {
        self.dfg.add_back_edge(src, dst, slot, 1, init);
    }

    /// An induction variable: `i = i_prev + step`, with `i = first` on the
    /// first iteration.
    pub fn induction(&mut self, first: i64, step: i64) -> NodeId {
        let s = self.konst(step);
        let i = self.raw(Op::Add);
        self.wire(s, i, 0);
        self.wire_prev(i, i, 1, first - step);
        i
    }

    /// An accumulator: `acc = acc_prev ⊕ value`, starting from `init`.
    pub fn accumulate(&mut self, op: Op, value: NodeId, init: i64) -> NodeId {
        let acc = self.raw(op);
        self.wire(value, acc, 0);
        self.wire_prev(acc, acc, 1, init);
        acc
    }

    /// Loop-carried state: `state_i = src_{i-1}` (a route op), starting
    /// from `init`. Classic register-rotation pattern (`b = a; c = b; …`).
    pub fn state_from_prev(&mut self, src: NodeId, init: i64) -> NodeId {
        let s = self.raw(Op::Route);
        self.wire_prev(src, s, 0, init);
        s
    }

    /// `load(base + i)`; `base == 0` loads `mem[i]` directly.
    pub fn load_at(&mut self, index: NodeId, base: i64) -> NodeId {
        let addr = if base == 0 {
            index
        } else {
            let b = self.konst(base);
            self.op(Op::Add, &[index, b])
        };
        self.op(Op::Load, &[addr])
    }

    /// `mem[base + i] = value`.
    pub fn store_at(&mut self, index: NodeId, base: i64, value: NodeId) -> NodeId {
        let addr = if base == 0 {
            index
        } else {
            let b = self.konst(base);
            self.op(Op::Add, &[index, b])
        };
        self.op(Op::Store, &[addr, value])
    }

    /// Binary op against a fresh constant.
    pub fn op_imm(&mut self, op: Op, lhs: NodeId, imm: i64) -> NodeId {
        let c = self.konst(imm);
        self.op(op, &[lhs, c])
    }

    /// Finishes and validates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the constructed DFG is invalid — kernel definitions are
    /// static data, so this is a programming error.
    pub fn finish(self) -> Dfg {
        self.dfg
            .validate()
            .unwrap_or_else(|e| panic!("kernel `{}` invalid: {e}", self.dfg.name()));
        self.dfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::interp::interpret;

    #[test]
    fn induction_counts_from_first() {
        let mut c = Ctx::new("ind");
        let i = c.induction(0, 1);
        let dfg = c.finish();
        let r = interpret(&dfg, vec![], 4).unwrap();
        let is: Vec<i64> = r.values.iter().map(|row| row[i.index()]).collect();
        assert_eq!(is, vec![0, 1, 2, 3]);
    }

    #[test]
    fn induction_with_stride() {
        let mut c = Ctx::new("ind2");
        let i = c.induction(5, 3);
        let dfg = c.finish();
        let r = interpret(&dfg, vec![], 3).unwrap();
        let is: Vec<i64> = r.values.iter().map(|row| row[i.index()]).collect();
        assert_eq!(is, vec![5, 8, 11]);
    }

    #[test]
    fn accumulate_sums() {
        let mut c = Ctx::new("acc");
        let i = c.induction(1, 1);
        let acc = c.accumulate(Op::Add, i, 100);
        let dfg = c.finish();
        let r = interpret(&dfg, vec![], 4).unwrap();
        let accs: Vec<i64> = r.values.iter().map(|row| row[acc.index()]).collect();
        assert_eq!(accs, vec![101, 103, 106, 110]);
    }

    #[test]
    fn state_rotation() {
        let mut c = Ctx::new("rot");
        let i = c.induction(10, 10);
        let b = c.state_from_prev(i, -1); // b_i = i_{i-1}
        let dfg = c.finish();
        let r = interpret(&dfg, vec![], 3).unwrap();
        let bs: Vec<i64> = r.values.iter().map(|row| row[b.index()]).collect();
        assert_eq!(bs, vec![-1, 10, 20]);
    }

    #[test]
    fn load_store_round_trip() {
        let mut c = Ctx::new("copy");
        let i = c.induction(0, 1);
        let v = c.load_at(i, 0);
        let _ = c.store_at(i, 8, v);
        let dfg = c.finish();
        let mut mem = vec![0i64; 16];
        mem[..4].copy_from_slice(&[9, 8, 7, 6]);
        let r = interpret(&dfg, mem, 4).unwrap();
        assert_eq!(&r.memory[8..12], &[9, 8, 7, 6]);
    }
}
