//! # satmapit-kernels
//!
//! The benchmark suite of the SAT-MapIt evaluation (DATE 2023, §V): loop
//! kernels from MiBench and Rodinia, modelled directly in the DFG IR.
//!
//! The paper extracts these loops from C sources through LLVM; this
//! reproduction reconstructs each loop body's data-flow structure by hand
//! from the published benchmark sources (see DESIGN.md, "Substitutions").
//! Every kernel is a *valid, executable* DFG: the test suite interprets it
//! and the integration tests map it onto CGRAs and verify the mapped code
//! computes the same values.
//!
//! ```
//! use satmapit_kernels::{all, by_name};
//! assert_eq!(all().len(), 11);
//! let sha = by_name("sha").unwrap();
//! assert!(sha.dfg.num_nodes() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod mibench;
mod rodinia;

use satmapit_dfg::{Dfg, Op};

pub use mibench::{basicmath, bitcount, gsm, patricia, sha, sha2, stringsearch};
pub use rodinia::{backprop, hotspot, nw, srand};

/// A benchmark kernel: the loop DFG plus everything needed to execute it.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The loop body.
    pub dfg: Dfg,
    /// One-line description of the modelled loop.
    pub description: &'static str,
    /// Initial data memory for simulation.
    pub memory: Vec<i64>,
    /// Iteration count used by the verification tests.
    pub sim_iterations: u32,
}

impl Kernel {
    fn new(dfg: Dfg, description: &'static str, sim_iterations: u32) -> Kernel {
        Kernel {
            dfg,
            description,
            memory: default_memory(),
            sim_iterations,
        }
    }

    /// The kernel's name (the DFG name).
    pub fn name(&self) -> &str {
        self.dfg.name()
    }
}

/// Deterministic 256-word input memory shared by all kernels: input arrays
/// live in the low half, outputs in the high half.
pub fn default_memory() -> Vec<i64> {
    (0..256).map(|k| ((k * 37 + 11) % 251) as i64).collect()
}

/// Benchmark names in the paper's presentation order (Fig. 6 x-axis).
pub const NAMES: [&str; 11] = [
    "sha",
    "gsm",
    "patricia",
    "bitcount",
    "backprop",
    "nw",
    "srand",
    "hotspot",
    "sha2",
    "basicmath",
    "stringsearch",
];

/// All 11 benchmark kernels, in [`NAMES`] order.
pub fn all() -> Vec<Kernel> {
    vec![
        sha(),
        gsm(),
        patricia(),
        bitcount(),
        backprop(),
        nw(),
        srand(),
        hotspot(),
        sha2(),
        basicmath(),
        stringsearch(),
    ]
}

/// Looks up a kernel by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all().into_iter().find(|k| k.name() == name)
}

/// The paper's running example (Fig. 2a): 11 nodes whose schedules are
/// shown in Figs. 4–5 and whose 2×2 mapping at II=3 is Fig. 2c. Paper
/// node `k` is `NodeId(k-1)`.
pub fn paper_example() -> Kernel {
    let mut dfg = Dfg::new("paper-example");
    let n1 = dfg.add_const(3);
    let n2 = dfg.add_const(5);
    let n3 = dfg.add_const(7);
    let n4 = dfg.add_const(11);
    let n5 = dfg.add_node_labeled(Op::Neg, 0, "n5");
    let n6 = dfg.add_node_labeled(Op::Not, 0, "n6");
    let n7 = dfg.add_node_labeled(Op::Abs, 0, "n7");
    let n8 = dfg.add_node_labeled(Op::Add, 0, "n8");
    let n9 = dfg.add_node_labeled(Op::Add, 0, "n9");
    let n10 = dfg.add_node_labeled(Op::Neg, 0, "n10");
    let n11 = dfg.add_node_labeled(Op::Xor, 0, "n11");

    dfg.add_edge(n3, n5, 0);
    dfg.add_edge(n5, n6, 0);
    dfg.add_edge(n4, n7, 0);
    dfg.add_edge(n6, n8, 0);
    dfg.add_edge(n7, n8, 1);
    dfg.add_edge(n8, n9, 0);
    dfg.add_back_edge(n9, n9, 1, 1, 0);
    dfg.add_edge(n1, n10, 0);
    dfg.add_edge(n10, n11, 0);
    dfg.add_edge(n2, n11, 1);

    Kernel::new(
        dfg,
        "the paper's running example (Fig. 2a): two fan-in trees and an accumulator",
        8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_cgra::Cgra;
    use satmapit_dfg::interp::interpret;
    use satmapit_schedule::{mii, rec_mii, res_mii, MobilitySchedule};

    #[test]
    fn names_match_suite() {
        let kernels = all();
        assert_eq!(kernels.len(), NAMES.len());
        for (k, name) in kernels.iter().zip(NAMES) {
            assert_eq!(k.name(), name);
        }
    }

    #[test]
    fn by_name_finds_everything() {
        for name in NAMES {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("doesnotexist").is_none());
    }

    #[test]
    fn kernel_sizes_are_realistic() {
        // The paper's loops range from a handful of ops to a few dozen.
        for k in all() {
            let n = k.dfg.num_nodes();
            assert!((8..=36).contains(&n), "{}: {} nodes", k.name(), n);
        }
    }

    #[test]
    fn every_kernel_validates_interprets_and_schedules() {
        for k in all().into_iter().chain([paper_example()]) {
            k.dfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let r = interpret(&k.dfg, k.memory.clone(), k.sim_iterations)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert_eq!(r.values.len() as u32, k.sim_iterations);
            let ms = MobilitySchedule::compute(&k.dfg).unwrap();
            assert!(ms.len() >= 2, "{}", k.name());
        }
    }

    #[test]
    fn mii_spread_covers_the_paper_range() {
        // On a 2x2, the suite's MIIs should span a meaningful range (the
        // paper's Fig. 6 shows IIs from ~2 to ~13 on 2x2).
        let cgra = Cgra::square(2);
        let miis: Vec<u32> = all().iter().map(|k| mii(&k.dfg, &cgra).unwrap()).collect();
        assert!(
            miis.iter().any(|&m| m >= 5),
            "some kernel is large: {miis:?}"
        );
        assert!(
            miis.iter().any(|&m| m <= 3),
            "some kernel is small: {miis:?}"
        );
    }

    #[test]
    fn recurrences_exist_in_crypto_kernels() {
        assert!(rec_mii(&sha().dfg) >= 2);
        assert!(rec_mii(&sha2().dfg) >= 2);
        assert!(rec_mii(&srand().dfg) >= 2);
        assert_eq!(rec_mii(&basicmath().dfg), 1);
    }

    #[test]
    fn paper_example_matches_figures() {
        let k = paper_example();
        assert_eq!(k.dfg.num_nodes(), 11);
        let cgra = Cgra::square(2);
        assert_eq!(res_mii(&k.dfg, &cgra), Some(3), "paper: II=3 kernel on 2x2");
        let ms = MobilitySchedule::compute(&k.dfg).unwrap();
        assert_eq!(ms.len(), 5, "Fig. 4 has 5 time slots");
    }

    #[test]
    fn memory_ops_present_where_expected() {
        for k in all() {
            assert!(
                k.dfg.num_memory_ops() >= 1,
                "{} should touch memory",
                k.name()
            );
        }
    }

    #[test]
    fn default_memory_is_stable() {
        let a = default_memory();
        let b = default_memory();
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
    }
}
