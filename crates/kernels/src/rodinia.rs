//! Loop kernels modelled on the Rodinia benchmarks (plus the `srand` LCG)
//! evaluated in the paper: `backprop`, `nw`, `hotspot`, `srand`.

use crate::build::Ctx;
use crate::Kernel;
use satmapit_dfg::Op;

/// Backprop weight-update: two multiply-accumulate streams feeding a
/// squashing function approximation.
pub fn backprop() -> Kernel {
    let mut c = Ctx::new("backprop");
    let i = c.induction(0, 1);
    // Forward MAC: sum1 += w1[i] * in1[i].
    let w1 = c.load_at(i, 0);
    let in1 = c.load_at(i, 32);
    let m1 = c.op(Op::Mul, &[w1, in1]);
    let sum1 = c.accumulate(Op::Add, m1, 0);
    // Error MAC: sum2 += w2[i] * delta[i].
    let w2 = c.load_at(i, 64);
    let dl = c.load_at(i, 96);
    let m2 = c.op(Op::Mul, &[w2, dl]);
    let sum2 = c.accumulate(Op::Add, m2, 0);
    // Squash approximation: out = s - s*s >> 12, s = sum1 + sum2.
    let s = c.op(Op::Add, &[sum1, sum2]);
    let sq = c.op(Op::Mul, &[s, s]);
    let sh = c.op_imm(Op::Shr, sq, 12);
    let out = c.op(Op::Sub, &[s, sh]);
    let _st = c.store_at(i, 128, out);
    Kernel::new(
        c.finish(),
        "backprop: dual multiply-accumulate with squash-function output",
        16,
    )
}

/// Needleman–Wunsch cell update: the three-way max over the north-west,
/// west and north neighbours with gap penalties.
pub fn nw() -> Kernel {
    let mut c = Ctx::new("nw");
    let i = c.induction(0, 1);
    let nw_v = c.load_at(i, 0); // northwest score
    let w_v = c.load_at(i, 32); // west score
    let n_v = c.load_at(i, 64); // north score
    let sub = c.load_at(i, 96); // substitution matrix entry
    let diag = c.op(Op::Add, &[nw_v, sub]);
    let from_w = c.op_imm(Op::Add, w_v, -2); // gap penalty
    let from_n = c.op_imm(Op::Add, n_v, -2);
    let best_gap = c.op(Op::Max, &[from_w, from_n]);
    let best = c.op(Op::Max, &[diag, best_gap]);
    // Running maximum of the row (traceback seed).
    let rowmax = c.accumulate(Op::Max, best, i64::MIN + 1);
    let _ = rowmax;
    let _st = c.store_at(i, 128, best);
    Kernel::new(
        c.finish(),
        "Needleman-Wunsch cell: 3-way max with gap penalties and row maximum",
        16,
    )
}

/// Hotspot transient thermal update: 4-point stencil with distinct
/// row/column weights (one boundary direction folded into the ambient
/// term, as in the Rodinia kernel's interior loop).
pub fn hotspot() -> Kernel {
    let mut c = Ctx::new("hotspot");
    let i = c.induction(0, 1);
    let center = c.load_at(i, 0);
    let north = c.load_at(i, 32);
    let south = c.load_at(i, 64);
    let east = c.load_at(i, 96);
    // Vertical conduction: (n + s - 2c) * wy.
    let ns = c.op(Op::Add, &[north, south]);
    let c2 = c.op_imm(Op::Shl, center, 1);
    let dv = c.op(Op::Sub, &[ns, c2]);
    let tv = c.op_imm(Op::Mul, dv, 13);
    // Horizontal conduction against the east neighbour: (e - c) * wx.
    let dh = c.op(Op::Sub, &[east, center]);
    let th = c.op_imm(Op::Mul, dh, 7);
    // Power input and ambient drift.
    let p = c.load_at(i, 128);
    let flux = c.op(Op::Add, &[tv, th]);
    let fp = c.op(Op::Add, &[flux, p]);
    let scaled = c.op_imm(Op::Shr, fp, 4);
    // Live-range split for the deep reuse of `center` (a copy the
    // compiler inserts so the value does not have to survive the whole
    // flux computation in one register/output window).
    let center_copy = c.op(Op::Route, &[center]);
    let out = c.op(Op::Add, &[center_copy, scaled]);
    let _st = c.store_at(i, 160, out);
    Kernel::new(
        c.finish(),
        "hotspot: 4-point thermal stencil with power input and scaling",
        16,
    )
}

/// The C library LCG used by the benchmarks' data generators:
/// `seed = seed * 1103515245 + 12345; out = (seed >> 16) & 0x7fff`.
pub fn srand() -> Kernel {
    let mut c = Ctx::new("srand");
    let i = c.induction(0, 1);
    // seed recurrence (distance-1 cycle of length 2 -> RecMII 2).
    let mul = c.raw(Op::Mul);
    let cm = c.konst(1103515245);
    let seed = c.op_imm(Op::Add, mul, 12345);
    c.wire_prev(seed, mul, 0, 42);
    c.wire(cm, mul, 1);
    let sh = c.op_imm(Op::Shr, seed, 16);
    let out = c.op_imm(Op::And, sh, 0x7fff);
    let _st = c.store_at(i, 64, out);
    Kernel::new(
        c.finish(),
        "srand: linear congruential generator with output tempering",
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use satmapit_dfg::interp::interpret;

    #[test]
    fn all_rodinia_kernels_validate_and_run() {
        for k in [backprop(), nw(), hotspot(), srand()] {
            assert!(k.dfg.validate().is_ok(), "{}", k.dfg.name());
            let r = interpret(&k.dfg, k.memory.clone(), k.sim_iterations).unwrap();
            assert_eq!(r.values.len() as u32, k.sim_iterations);
        }
    }

    #[test]
    fn srand_matches_libc_lcg() {
        let k = srand();
        let r = interpret(&k.dfg, k.memory.clone(), 3).unwrap();
        let mut seed: i64 = 42;
        for j in 0..3 {
            seed = seed.wrapping_mul(1103515245).wrapping_add(12345);
            let expected = (seed >> 16) & 0x7fff;
            assert_eq!(r.memory[64 + j], expected, "draw {j}");
        }
    }

    #[test]
    fn nw_picks_the_best_move() {
        let k = nw();
        let mut mem = vec![0i64; 256];
        mem[0] = 10; // nw
        mem[32] = 50; // w
        mem[64] = 1; // n
        mem[96] = 3; // sub
        let r = interpret(&k.dfg, mem, 1).unwrap();
        assert_eq!(r.memory[128], 48, "west + gap wins");
    }

    #[test]
    fn hotspot_steady_state_is_fixed_point() {
        // Uniform temperature and zero power: flux is zero, so the output
        // equals the input temperature.
        let k = hotspot();
        let mut mem = vec![0i64; 256];
        for j in 0..32 {
            mem[j] = 100;
            mem[32 + j] = 100;
            mem[64 + j] = 100;
            mem[96 + j] = 100;
            mem[128 + j] = 0;
        }
        let r = interpret(&k.dfg, mem, 8).unwrap();
        assert!(r.memory[160..168].iter().all(|&v| v == 100));
    }

    #[test]
    fn backprop_accumulates_macs() {
        let k = backprop();
        let mut mem = vec![0i64; 256];
        mem[0] = 2;
        mem[32] = 3; // m1 = 6
        mem[64] = 1;
        mem[96] = 4; // m2 = 4
        let r = interpret(&k.dfg, mem, 1).unwrap();
        // s = 10, sq>>12 = 0, out = 10.
        assert_eq!(r.memory[128], 10);
    }
}
