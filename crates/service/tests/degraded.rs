//! Graceful degradation end to end: a daemon whose disk starts eating
//! every append keeps serving answers from memory, flips its health to
//! `degraded` and surfaces the failure counters, and a restart with a
//! healthy disk recovers cleanly. Also pins the client retry loop:
//! idempotent submits reconnect-and-replay through injected connection
//! failures.
//!
//! Fault plans are process-global, so the tests here serialize on
//! `SERIAL` and run the fault window as briefly as possible.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::{DurabilityPolicy, EngineConfig};
use satmapit_faults as faults;
use satmapit_service::wire::MapRequest;
use satmapit_service::{Client, Json, RetryPolicy, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-degraded-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp cache dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn chain(n: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("chain{n}"));
    let mut prev = dfg.add_const(1);
    for _ in 1..n {
        let next = dfg.add_node(Op::Neg);
        dfg.add_edge(prev, next, 0);
        prev = next;
    }
    dfg
}

fn request(n: usize, id: i64) -> MapRequest {
    MapRequest {
        id: Some(id),
        name: format!("chain{n}@2x2"),
        dfg: chain(n),
        cgra: Cgra::square(2),
        timeout_ms: None,
    }
}

fn server_config(max_append_failures: u64) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 32,
        engine: EngineConfig {
            durability: DurabilityPolicy {
                max_append_failures,
                ..DurabilityPolicy::default()
            },
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server thread");
}

fn status_of(health: &Json) -> &str {
    health
        .get("status")
        .and_then(Json::as_str)
        .expect("health has a status")
}

/// Satellite 3: with every store append failing, the daemon keeps
/// answering (memory-only), `health` flips to `degraded`, `stats`
/// carries the error counters, and a restart with the plan cleared
/// comes back healthy.
#[test]
fn daemon_survives_a_dying_disk_and_recovers_on_restart() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let dir = TempDir::new("dying-disk");

    faults::install("error@append.results;error@append.bounds").expect("valid plan");
    let mut config = server_config(2);
    config.cache_dir = Some(dir.0.clone());
    let (addr, handle) = start(config);
    let mut client = Client::connect(&addr).expect("connect");

    assert_eq!(
        status_of(&client.health().expect("health")),
        "healthy",
        "no append has failed yet"
    );

    // Two solves = four failed appends (result + bound each): well past
    // the threshold of 2. Every answer still arrives.
    for (id, n) in [(1i64, 2usize), (2, 3)] {
        let reply = client.map(&request(n, id)).expect("map reply");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            reply
                .get("result")
                .and_then(|r| r.get("status"))
                .and_then(Json::as_str),
            Some("mapped"),
            "a degraded daemon still solves: {reply}"
        );
    }
    faults::clear(); // the latch must hold without the plan

    let health = client.health().expect("health");
    assert_eq!(status_of(&health), "degraded");
    assert_eq!(
        health.get("ok").and_then(Json::as_bool),
        Some(true),
        "degraded is an operating mode, not an outage"
    );

    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("degraded").and_then(Json::as_bool), Some(true));
    assert!(
        cache.get("append_errors").and_then(Json::as_u64) >= Some(2),
        "append_errors surfaced: {cache}"
    );

    // Memory-only serving: a repeat of a failed-to-persist job is a
    // cache hit, no solver work.
    let reply = client.map(&request(2, 3)).expect("repeat reply");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("persistent").and_then(Json::as_bool),
        Some(false),
        "nothing reached the disk"
    );
    shutdown(&addr, handle);

    // Restart over the same directory, disk healthy again: the latch is
    // gone, nothing of the degraded run leaked into the store, and new
    // work persists normally.
    let mut config = server_config(2);
    config.cache_dir = Some(dir.0.clone());
    let (addr, handle) = start(config);
    let mut client = Client::connect(&addr).expect("reconnect");
    assert_eq!(status_of(&client.health().expect("health")), "healthy");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("degraded").and_then(Json::as_bool), Some(false));
    assert_eq!(cache.get("append_errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        cache.get("persistent_entries").and_then(Json::as_u64),
        Some(0),
        "the degraded run must not have half-persisted anything"
    );
    let reply = client.map(&request(2, 4)).expect("map after recovery");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    shutdown(&addr, handle);

    // And the post-recovery append really landed.
    let mut config = server_config(2);
    config.cache_dir = Some(dir.0.clone());
    let (addr, handle) = start(config);
    let mut client = Client::connect(&addr).expect("reconnect");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(
        cache.get("persistent_entries").and_then(Json::as_u64),
        Some(1)
    );
    shutdown(&addr, handle);
}

/// The retry client reconnects through injected connection failures on
/// idempotent ops and returns the same answer a clean run would.
#[test]
fn retry_client_replays_submits_through_connection_failures() {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let (addr, handle) = start(server_config(3));

    // Reference answer over a plain connection.
    let mut plain = Client::connect(&addr).expect("connect");
    let reference = plain.map(&request(4, 1)).expect("reference reply");

    // The next server-side read fails (once): the first roundtrip dies
    // with a dropped connection, the replay succeeds.
    faults::install("error-once@net.read").expect("valid plan");
    let mut retrying = Client::with_retry(
        &addr,
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            socket_timeout: Some(Duration::from_secs(5)),
            seed: 7,
        },
    );
    let replayed = retrying.map(&request(4, 2)).expect("retried reply");
    faults::clear();
    assert_eq!(
        replayed.get("result"),
        reference.get("result"),
        "the replayed submit returns the same mapping"
    );
    assert_eq!(
        replayed.get("cached").and_then(Json::as_bool),
        Some(true),
        "the retry hit the cache the reference solve populated"
    );
    assert_eq!(faults::injected(), 0, "plan cleared");

    // With retries exhausted the failure surfaces as an error.
    faults::install("error@net.read").expect("valid plan");
    let mut exhausted = Client::with_retry(
        &addr,
        RetryPolicy {
            attempts: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            socket_timeout: Some(Duration::from_secs(5)),
            seed: 9,
        },
    );
    let err = exhausted.health();
    faults::clear();
    assert!(err.is_err(), "unreachable reads must surface after retries");

    shutdown(&addr, handle);
}
