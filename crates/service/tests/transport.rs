//! Transport-level behaviour of the event-loop daemon: the request-line
//! cap refuses newline-free firehoses, slow-loris clients trickle into
//! complete requests, idle connections don't wedge shutdown, and
//! pipelined requests on one connection answer in order.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::EngineConfig;
use satmapit_service::wire::MapRequest;
use satmapit_service::{json, Client, Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn chain(n: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("chain{n}"));
    let mut prev = dfg.add_const(1);
    for _ in 1..n {
        let next = dfg.add_node(Op::Neg);
        dfg.add_edge(prev, next, 0);
        prev = next;
    }
    dfg
}

fn request_line(n: usize, id: i64) -> String {
    let request = MapRequest {
        id: Some(id),
        name: format!("chain{n}"),
        dfg: chain(n),
        cgra: Cgra::square(2),
        timeout_ms: None,
    };
    let mut line = request.to_json().to_string();
    line.push('\n');
    line
}

fn start_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server thread");
}

#[test]
fn a_newline_free_firehose_is_refused_at_the_line_cap() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        max_line_bytes: 4096,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    });

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // 512 KiB without a single newline — two orders of magnitude past
    // the cap. The server must answer an error and drop the connection
    // long before the stream ends, so the write side may fail with a
    // reset; both are acceptable outcomes for the writer.
    let blob = vec![b'x'; 64 * 1024];
    for _ in 0..8 {
        if stream.write_all(&blob).is_err() {
            break;
        }
    }
    let _ = stream.flush();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = String::new();
    // The error line may already sit in the socket buffer even if the
    // tail of the firehose was refused.
    let read = BufReader::new(&stream).read_line(&mut reply);
    if let Ok(n) = read {
        if n > 0 {
            let parsed = json::parse(reply.trim()).expect("error line is JSON");
            assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
            let message = parsed.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(
                message.contains("exceeds 4096 bytes"),
                "unexpected error: {message}"
            );
        }
    }

    // The daemon is unharmed: a well-behaved client still gets answers.
    let mut client = Client::connect(&addr).expect("connect after firehose");
    let reply = client
        .roundtrip(&json::parse(request_line(3, 7).trim()).unwrap())
        .expect("post-firehose request");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    shutdown(&addr, handle);
}

#[test]
fn a_slow_loris_client_still_completes_its_request() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    });

    // A reference answer over a normal client first.
    let request = json::parse(request_line(4, 1).trim()).unwrap();
    let mut reference_client = Client::connect(&addr).expect("connect reference");
    let reference = reference_client.roundtrip(&request).expect("reference");

    // The same request, trickled a few bytes at a time with pauses —
    // a slow-loris shape that must neither starve other clients nor be
    // dropped mid-line.
    let line = request_line(4, 1);
    let mut stream = TcpStream::connect(&addr).expect("connect loris");
    for piece in line.as_bytes().chunks(7) {
        stream.write_all(piece).expect("trickle");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .expect("loris reply");
    let reply = json::parse(reply.trim()).expect("loris reply is JSON");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    // Identical id, fingerprint and result document — only provenance
    // and timing fields may differ between solve and cached replay.
    for field in ["id", "fingerprint", "result"] {
        assert_eq!(
            reply.get(field).map(Json::to_string),
            reference.get(field).map(Json::to_string),
            "loris `{field}` matches the reference answer"
        );
    }
    shutdown(&addr, handle);
}

#[test]
fn idle_connections_do_not_wedge_shutdown() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    });

    // Dozens of connections that never send a byte.
    let idle: Vec<TcpStream> = (0..48)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();

    // A working client still gets an answer while they sit there.
    let mut client = Client::connect(&addr).expect("connect worker");
    let reply = client
        .roundtrip(&json::parse(request_line(3, 1).trim()).unwrap())
        .expect("request among idlers");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // Shutdown must drain and exit even though the idlers never spoke;
    // each of them sees EOF, not a hang.
    shutdown(&addr, handle);
    for mut stream in idle {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = stream.read(&mut buf).expect("idler read");
        assert_eq!(n, 0, "idle connection sees EOF at shutdown");
    }
}

#[test]
fn a_timeout_budget_fails_fast_against_a_mute_server() {
    // A listener that accepts and then never says anything.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind mute");
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let mut client =
        Client::connect_timeout(&addr, Duration::from_millis(200)).expect("connect mute");
    let started = std::time::Instant::now();
    let err = client
        .roundtrip(&json::parse(request_line(3, 1).trim()).unwrap())
        .expect_err("a mute server cannot answer");
    assert!(err.is_timeout(), "not a timeout: {err}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the read deadline fired, not a hang"
    );
    drop(hold.join());
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_request_order() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    });

    // Five requests written back-to-back before reading anything. Their
    // solves may finish out of order across the two workers, but the
    // responses must come back in request order.
    let lines: Vec<String> = (0..5).map(|i| request_line(2 + i, i as i64)).collect();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(lines.concat().as_bytes())
        .expect("pipelined write");
    stream.flush().expect("flush");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let mut replies = Vec::new();
    for _ in 0..5 {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("pipelined reply");
        replies.push(json::parse(reply.trim()).expect("reply is JSON"));
    }
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(
            reply.get("id").and_then(Json::as_i64),
            Some(i as i64),
            "response {i} carries its request's id: {reply}"
        );
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }

    // A repeat of the same pipeline answers byte-identically (from the
    // cache) — framing does not depend on solve timing.
    let mut stream = TcpStream::connect(&addr).expect("reconnect");
    stream
        .write_all(lines.concat().as_bytes())
        .expect("repeat write");
    stream.flush().expect("flush");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(&stream);
    for reply in &replies {
        let mut repeat = String::new();
        reader.read_line(&mut repeat).expect("repeat reply");
        let repeat = json::parse(repeat.trim()).expect("repeat is JSON");
        assert_eq!(
            repeat.get("result").map(Json::to_string),
            reply.get("result").map(Json::to_string),
            "cached replay returns the identical result document"
        );
    }
    shutdown(&addr, handle);
}
