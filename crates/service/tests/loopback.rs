//! Loopback integration: concurrent `submit` clients against one `serve`
//! process agree with a sequential [`Engine::map_batch`], and a daemon
//! restart answers repeated jobs from the persistent cache with no
//! solver work.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::{Engine, EngineConfig, Job};
use satmapit_service::wire::{outcome_signature, MapRequest};
use satmapit_service::{Client, Json, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "satmapit-loopback-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp cache dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn chain(n: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("chain{n}"));
    let mut prev = dfg.add_const(1);
    for _ in 1..n {
        let next = dfg.add_node(Op::Neg);
        dfg.add_edge(prev, next, 0);
        prev = next;
    }
    dfg
}

fn recurrence() -> Dfg {
    let mut dfg = Dfg::new("rec");
    let a = dfg.add_node(Op::Neg);
    let b = dfg.add_node(Op::Neg);
    let c = dfg.add_node(Op::Neg);
    dfg.add_edge(a, b, 0);
    dfg.add_edge(b, c, 0);
    dfg.add_back_edge(c, a, 0, 1, 0);
    dfg
}

fn fanout() -> Dfg {
    let mut dfg = Dfg::new("fan5");
    let src = dfg.add_const(1);
    for _ in 0..5 {
        let n = dfg.add_node(Op::Neg);
        dfg.add_edge(src, n, 0);
    }
    dfg
}

/// The job mix: synthetic loops exercising UNSAT climbs and recurrences,
/// plus two real benchmark kernels, across two mesh sizes.
fn jobs() -> Vec<Job> {
    let mut jobs = vec![
        Job::new("chain4@2x2", chain(4), Cgra::square(2)),
        Job::new("rec@1x1", recurrence(), Cgra::square(1)),
        Job::new("fan5@1x2", fanout(), Cgra::new(1, 2)),
        Job::new("chain4@2x2-dup", chain(4), Cgra::square(2)),
    ];
    for name in ["srand", "nw"] {
        let kernel = satmapit_kernels::by_name(name).unwrap();
        jobs.push(Job::new(
            format!("{name}@2x2"),
            kernel.dfg.clone(),
            Cgra::square(2),
        ));
    }
    jobs
}

fn request_for(job: &Job, id: i64) -> MapRequest {
    MapRequest {
        id: Some(id),
        name: job.name.clone(),
        dfg: job.dfg.clone(),
        cgra: job.cgra.clone(),
        timeout_ms: None,
    }
}

fn start_server(cache_dir: Option<PathBuf>) -> (String, std::thread::JoinHandle<()>) {
    start_server_with(ServerConfig {
        workers: 2,
        queue_capacity: 32,
        engine: EngineConfig::default(),
        cache_dir,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server thread");
}

#[test]
fn concurrent_clients_agree_with_sequential_map_batch() {
    // The reference answers, computed locally with the same engine
    // configuration the server runs.
    let reference = Engine::new(EngineConfig::default());
    let expected: Vec<Json> = reference
        .map_batch(jobs())
        .iter()
        .map(|item| outcome_signature(&item.outcome))
        .collect();

    let (addr, handle) = start_server(None);

    // N concurrent clients, each submitting the whole suite on its own
    // connection, half of them in reverse order to interleave the queue.
    let num_clients = 4;
    let all_jobs = jobs();
    let results: Vec<Vec<Json>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_clients)
            .map(|c| {
                let addr = addr.clone();
                let all_jobs = &all_jobs;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("client connect");
                    let mut order: Vec<usize> = (0..all_jobs.len()).collect();
                    if c % 2 == 1 {
                        order.reverse();
                    }
                    let mut replies = vec![Json::Null; all_jobs.len()];
                    for index in order {
                        let request = request_for(&all_jobs[index], index as i64);
                        let reply = client.map(&request).expect("map roundtrip");
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "{reply}"
                        );
                        assert_eq!(reply.get("id").and_then(Json::as_i64), Some(index as i64));
                        replies[index] = reply;
                    }
                    replies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (client_index, replies) in results.iter().enumerate() {
        for (job_index, reply) in replies.iter().enumerate() {
            let result = reply.get("result").expect("result present");
            assert_eq!(
                result, &expected[job_index],
                "client {client_index}, job `{}`: daemon answer diverges from Engine::map_batch",
                all_jobs[job_index].name
            );
        }
    }

    // The duplicate job and the cross-client repeats were all cache hits:
    // 5 distinct problems were solved, ever.
    let mut client = Client::connect(&addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(5));
    assert_eq!(
        cache.get("hits").and_then(Json::as_u64),
        Some(num_clients as u64 * all_jobs.len() as u64 - 5)
    );

    // Health and malformed-request handling on the same connection.
    let health = client.health().expect("health");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("healthy"));
    let bad = client
        .roundtrip(&Json::obj(vec![("op", Json::Str("map".into()))]))
        .expect("error roundtrip");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    shutdown(&addr, handle);
}

#[test]
fn daemon_restart_answers_from_the_persistent_cache() {
    let dir = TempDir::new("restart");
    let all_jobs = jobs();

    // Cold daemon: everything solves.
    let (addr, handle) = start_server(Some(dir.0.clone()));
    let mut first_answers = Vec::new();
    {
        let mut client = Client::connect(&addr).expect("client connect");
        for (index, job) in all_jobs.iter().enumerate() {
            let reply = client
                .map(&request_for(job, index as i64))
                .expect("map roundtrip");
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(
                reply.get("persistent").and_then(Json::as_bool),
                Some(false),
                "cold run cannot hit the persistent store"
            );
            first_answers.push(reply);
        }
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("solves")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(5),
            "five distinct problems solved"
        );
    }
    shutdown(&addr, handle);

    // Warm daemon on the same cache dir: 100% persistent hits, zero
    // solver work, byte-identical fingerprints and results.
    let (addr, handle) = start_server(Some(dir.0.clone()));
    {
        let mut client = Client::connect(&addr).expect("client connect");
        for (index, job) in all_jobs.iter().enumerate() {
            let reply = client
                .map(&request_for(job, index as i64))
                .expect("map roundtrip");
            assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
            assert_eq!(
                reply.get("persistent").and_then(Json::as_bool),
                Some(true),
                "job `{}` must be a persistent-cache hit",
                job.name
            );
            assert_eq!(
                reply.get("result"),
                first_answers[index].get("result"),
                "job `{}`: restart changed the answer",
                job.name
            );
            assert_eq!(
                reply.get("fingerprint"),
                first_answers[index].get("fingerprint")
            );
        }
        let stats = client.stats().expect("stats");
        let cache = stats.get("cache").expect("cache stats");
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(0));
        assert_eq!(
            cache.get("persistent_hits").and_then(Json::as_u64),
            Some(all_jobs.len() as u64)
        );
        assert_eq!(
            stats
                .get("solves")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(0),
            "the warm daemon never touched the SAT solver"
        );
    }
    shutdown(&addr, handle);
}

/// The ISSUE's end-to-end acceptance: the full 11-kernel suite through a
/// daemon with an empty cache dir, then a restart — the second run is
/// 100% persistent-cache hits, byte-identical, zero SAT solves. Ignored
/// by default (it solves the whole suite); CI runs it in `--release`
/// with `-- --ignored`.
#[test]
#[ignore = "full 11-kernel suite; CI runs it in release with -- --ignored"]
fn full_suite_restart_is_all_persistent_hits() {
    let dir = TempDir::new("full-suite");
    let suite: Vec<Job> = satmapit_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name().to_string(), k.dfg, Cgra::square(2)))
        .collect();
    assert_eq!(suite.len(), 11);

    let (addr, handle) = start_server(Some(dir.0.clone()));
    let mut first = Vec::new();
    {
        let mut client = Client::connect(&addr).expect("client connect");
        for (index, job) in suite.iter().enumerate() {
            let reply = client
                .map(&request_for(job, index as i64))
                .expect("map roundtrip");
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "{}: {reply}",
                job.name
            );
            first.push(reply);
        }
    }
    shutdown(&addr, handle);

    let (addr, handle) = start_server(Some(dir.0.clone()));
    {
        let mut client = Client::connect(&addr).expect("client connect");
        for (index, job) in suite.iter().enumerate() {
            let reply = client
                .map(&request_for(job, index as i64))
                .expect("map roundtrip");
            assert_eq!(
                reply.get("persistent").and_then(Json::as_bool),
                Some(true),
                "kernel `{}` must be a persistent-cache hit",
                job.name
            );
            assert_eq!(
                reply.get("result"),
                first[index].get("result"),
                "kernel `{}`: restart changed the answer",
                job.name
            );
        }
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            stats
                .get("solves")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(0),
            "the warm daemon never touched the SAT solver"
        );
    }
    shutdown(&addr, handle);
}

/// Satellite regression: a panicking solve used to poison `inner.queue`,
/// after which every later lock attempt (`.expect("queue poisoned")`)
/// aborted its thread — one bad request killed the whole daemon. The
/// worker now catches the unwind, answers *that* request with an error,
/// and the daemon keeps serving.
#[test]
fn daemon_survives_a_panicking_worker() {
    let (addr, handle) = start_server_with(ServerConfig {
        workers: 2,
        queue_capacity: 32,
        engine: EngineConfig::default(),
        cache_dir: None,
        panic_on_name: Some("boom".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connect");

    // The fault-injected request panics the worker mid-solve…
    let poison = Job::new("boom", chain(3), Cgra::square(2));
    let reply = client.map(&request_for(&poison, 1)).expect("map roundtrip");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(false),
        "a panicking solve must become a per-request error: {reply}"
    );
    assert!(
        reply
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("panicked")),
        "{reply}"
    );

    // …and the daemon still serves: same connection, new connections,
    // queue-touching endpoints, repeatedly.
    for round in 0..2 {
        let job = Job::new(format!("after-{round}"), chain(4), Cgra::square(2));
        let reply = client.map(&request_for(&job, 10 + round)).expect("map");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let result = reply.get("result").expect("result");
        assert_eq!(result.get("status").and_then(Json::as_str), Some("mapped"));
    }
    let mut fresh = Client::connect(&addr).expect("fresh connection");
    let health = fresh.health().expect("health");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("healthy"));
    let stats = fresh.stats().expect("stats");
    assert_eq!(
        stats.get("panics").and_then(Json::as_u64),
        Some(1),
        "the caught panic is counted: {stats}"
    );

    shutdown(&addr, handle);
}

/// Satellite regression: `timeout_ms: 0` used to be admitted with an
/// already-expired deadline, wasting a queue slot and a worker wakeup on
/// a foregone conclusion. It is now answered at admission — same
/// response shape, zero solver work.
#[test]
fn zero_timeout_is_answered_at_admission_without_a_worker() {
    let (addr, handle) = start_server(None);
    let mut client = Client::connect(&addr).expect("client connect");

    let job = Job::new("chain6@2x2", chain(6), Cgra::square(2));
    let mut request = request_for(&job, 3);
    request.timeout_ms = Some(0);
    let reply = client.map(&request).expect("map roundtrip");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("failed"));
    assert_eq!(result.get("kind").and_then(Json::as_str), Some("timeout"));
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(false));

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("expired_at_admission").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        stats
            .get("solves")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64),
        Some(0),
        "no worker solve may happen for an expired deadline: {stats}"
    );

    // A real budget afterwards still solves normally (nothing was cached
    // or poisoned by the fast path).
    request.timeout_ms = Some(120_000);
    let reply = client.map(&request).expect("map roundtrip");
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("mapped"));

    // Once the answer is cached, a zero budget gets it anyway: "answer
    // only if you already have it" must not regress to a reflexive
    // timeout (the fast path probes the cache before synthesizing one).
    request.timeout_ms = Some(0);
    let reply = client.map(&request).expect("map roundtrip");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("mapped"));

    shutdown(&addr, handle);
}

/// The per-outcome latency histograms classify exactly the request mix
/// the daemon served: cold solves land in `solved`, repeats in
/// `memory_hit`, a worker-path deadline expiry in `timeout` — and every
/// queued request records a queue wait.
#[test]
fn latency_histograms_classify_the_request_mix() {
    let (addr, handle) = start_server(None);
    let mut client = Client::connect(&addr).expect("client connect");

    // Two cold solves…
    let cold = [
        Job::new("lat-chain4", chain(4), Cgra::square(2)),
        Job::new("lat-fan5", fanout(), Cgra::new(1, 2)),
    ];
    for (i, job) in cold.iter().enumerate() {
        let reply = client.map(&request_for(job, i as i64)).expect("map");
        assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(false));
    }
    // …the same two again (memory hits)…
    for (i, job) in cold.iter().enumerate() {
        let reply = client.map(&request_for(job, 10 + i as i64)).expect("map");
        assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
        assert!(reply.get("queue_us").and_then(Json::as_u64).is_some());
    }
    // …and one worker-path timeout: a 1 ms budget is admitted (not yet
    // expired) but cannot survive a cold chain-16 solve.
    let mut slow = request_for(&Job::new("lat-slow", chain(16), Cgra::square(2)), 20);
    slow.timeout_ms = Some(1);
    let reply = client.map(&slow).expect("map");
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("kind").and_then(Json::as_str), Some("timeout"));

    let stats = client.stats().expect("stats");
    let latency = stats.get("latency").expect("latency block");
    let count = |class: &str| {
        latency
            .get(class)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("latency.{class}.count in {stats}"))
    };
    assert_eq!(count("solved"), 2, "{stats}");
    assert_eq!(count("memory_hit"), 2, "{stats}");
    assert_eq!(count("timeout"), 1, "{stats}");
    assert_eq!(count("persistent_hit"), 0, "{stats}");
    assert_eq!(count("error"), 0, "{stats}");
    assert_eq!(count("queue_wait"), 5, "every admitted request waits");
    // Percentile sanity on a populated class: ordered and bounded by
    // the recorded extremes.
    let solved = latency.get("solved").expect("solved block");
    let field = |key: &str| solved.get(key).and_then(Json::as_u64).expect("field");
    assert!(field("p50_us") <= field("p90_us"));
    assert!(field("p90_us") <= field("p99_us"));
    assert!(field("min_us") <= field("p50_us") && field("p99_us") <= field("max_us").max(1));
    // The legacy solves block still matches: 2 solved + 1 timeout.
    assert_eq!(
        stats
            .get("solves")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64),
        Some(3),
        "{stats}"
    );
    // Version is reported on both stats and health.
    assert!(
        stats.get("version").and_then(Json::as_str).is_some(),
        "{stats}"
    );
    let health = client.health().expect("health");
    assert!(
        health.get("version").and_then(Json::as_str).is_some(),
        "{health}"
    );

    shutdown(&addr, handle);
}

/// A daemon started with a trace directory records request and rung
/// spans and drains them into a Perfetto-loadable Chrome trace file on
/// a `trace` request.
#[test]
fn trace_endpoint_writes_a_chrome_trace_file() {
    let trace_dir = TempDir::new("trace");
    let (addr, handle) = start_server_with(ServerConfig {
        workers: 2,
        queue_capacity: 32,
        engine: EngineConfig::default(),
        trace_dir: Some(trace_dir.0.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connect");

    let job = Job::new("traced-chain5", chain(5), Cgra::square(2));
    let reply = client.map(&request_for(&job, 1)).expect("map");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let drained = client.trace().expect("trace");
    assert_eq!(
        drained.get("ok").and_then(Json::as_bool),
        Some(true),
        "{drained}"
    );
    assert!(
        drained.get("events").and_then(Json::as_u64).unwrap_or(0) > 0,
        "{drained}"
    );
    let path = drained
        .get("path")
        .and_then(Json::as_str)
        .expect("trace file path")
        .to_string();
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let doc = satmapit_service::json::parse(&text).expect("trace file is strict JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let cats = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some(cat))
            .count()
    };
    assert!(cats("rung") >= 1, "per-II rung spans in the trace");
    assert!(cats("request") >= 1, "per-request span in the trace");

    shutdown(&addr, handle);
}

#[test]
fn per_request_deadline_times_out_and_is_not_poisoning() {
    let (addr, handle) = start_server(None);
    let mut client = Client::connect(&addr).expect("client connect");

    // A zero-millisecond budget forces Timeout…
    let job = Job::new("chain6@2x2", chain(6), Cgra::square(2));
    let mut request = request_for(&job, 7);
    request.timeout_ms = Some(0);
    let reply = client.map(&request).expect("map roundtrip");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("failed"));
    assert_eq!(result.get("kind").and_then(Json::as_str), Some("timeout"));

    // …and the timeout is not cached: the unconstrained retry solves.
    request.timeout_ms = None;
    let reply = client.map(&request).expect("map roundtrip");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(false));
    let result = reply.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("mapped"));

    shutdown(&addr, handle);
}
