//! Observability integration: exported Chrome traces parse with the
//! service's strict JSON parser, and the flight recorder is a pure
//! observer — turning it on changes no fingerprint and no answer.

use satmapit_cgra::Cgra;
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::fingerprint::fingerprint;
use satmapit_engine::{map_raced, EngineConfig};
use satmapit_obs as obs;
use satmapit_service::json::{parse, Json};
use satmapit_service::wire::outcome_signature;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Tracing is process-global; every test that toggles it takes this
/// gate so the parallel test runner cannot interleave drains.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sample_dfg() -> Dfg {
    let mut dfg = Dfg::new("obs-sample");
    let a = dfg.add_const(2);
    let b = dfg.add_node(Op::Add);
    dfg.add_edge(a, b, 0);
    dfg.add_back_edge(b, b, 1, 1, 0);
    dfg
}

#[test]
fn chrome_trace_round_trips_through_the_service_json_parser() {
    let _gate = serial();
    obs::trace::set_enabled(true);
    obs::trace::drain();
    {
        let track = obs::trace::allocate_tracks(1);
        obs::trace::name_track(track, "sibling \"zero\"");
        let _guard = obs::trace::push_track(track);
        let mut span = obs::trace::Span::begin(obs::trace::Category::Rung, "rung ii=3");
        span.arg("conflicts", 41);
        span.arg_str("outcome", "unsat\nwith newline");
    }
    let events = obs::trace::drain();
    obs::trace::set_enabled(false);
    let text = obs::trace::export_chrome(&events);

    let doc = parse(&text).expect("exported trace must be strict JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let rung = trace_events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("rung ii=3"))
        .expect("the recorded span survives the round trip");
    assert_eq!(rung.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(rung.get("cat").and_then(Json::as_str), Some("rung"));
    let args = rung.get("args").expect("args object");
    assert_eq!(args.get("conflicts").and_then(Json::as_i64), Some(41));
    assert_eq!(
        args.get("outcome").and_then(Json::as_str),
        Some("unsat\nwith newline")
    );
    // The track label (with its embedded quotes) survives as
    // thread_name metadata.
    assert!(trace_events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("thread_name")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                == Some("sibling \"zero\"")
    }));
}

#[test]
fn tracing_is_fingerprint_neutral_and_changes_no_answer() {
    let _gate = serial();
    let dfg = sample_dfg();
    let cgra = Cgra::square(2);
    let config = EngineConfig::default();

    obs::trace::set_enabled(false);
    let key_off = fingerprint(&dfg, &cgra, &config);
    let answer_off = outcome_signature(&map_raced(&dfg, &cgra, &config));

    obs::trace::set_enabled(true);
    let key_on = fingerprint(&dfg, &cgra, &config);
    let answer_on = outcome_signature(&map_raced(&dfg, &cgra, &config));
    let events = obs::trace::drain();
    obs::trace::set_enabled(false);

    assert_eq!(key_off, key_on, "tracing must never enter a cache key");
    assert_eq!(answer_off, answer_on, "tracing must never change an answer");
    // And the traced run actually recorded its ladder: at least one
    // rung span with the solve's counters.
    assert!(
        events
            .iter()
            .any(|e| e.cat == obs::Category::Rung && e.name.starts_with("rung ii=")),
        "a traced solve records rung spans"
    );
}
