//! Property coverage for the wire format: requests, DFGs and CGRAs
//! survive encode→serialize→parse→decode for arbitrary inputs, including
//! hostile labels (quotes, newlines, non-ASCII) and extreme immediates.

use proptest::prelude::*;
use satmapit_cgra::{Cgra, MemoryPolicy, Topology};
use satmapit_dfg::gen::{random_dfg, RandomDfgConfig};
use satmapit_dfg::{Dfg, Op};
use satmapit_service::json::{self, Json};
use satmapit_service::wire::{
    cgra_from_json, cgra_to_json, dfg_from_json, dfg_to_json, parse_request, MapRequest, Request,
};

fn arbitrary_cgra(rows: u16, cols: u16, topo: u8, regs: u8, policy: u8) -> Cgra {
    Cgra::new(rows.clamp(1, 8), cols.clamp(1, 8))
        .with_topology(match topo % 3 {
            0 => Topology::Mesh4,
            1 => Topology::Mesh8,
            _ => Topology::Torus4,
        })
        .with_regs_per_pe(regs)
        .with_memory_policy(match policy % 4 {
            0 => MemoryPolicy::AllPes,
            1 => MemoryPolicy::LeftColumn,
            2 => MemoryPolicy::None,
            _ => MemoryPolicy::SplitLoadStore,
        })
}

/// Random structural DFG plus hostile decorations the generator never
/// produces: extreme immediates and labels needing JSON escapes.
fn decorated_dfg(config: &RandomDfgConfig, imm: i64, label_salt: u64) -> Dfg {
    let base = random_dfg(config);
    let mut dfg = Dfg::new(format!("k\"{}\"\n\t✓{label_salt}", base.name()));
    for n in base.node_ids() {
        let node = base.node(n);
        let hostile = format!("{}\\\"{}\u{1}é{imm}", node.label, label_salt);
        dfg.add_node_labeled(node.op, node.imm.wrapping_add(imm), hostile);
    }
    for (_, e) in base.edges() {
        dfg.add_back_edge(
            e.src,
            e.dst,
            e.operand,
            e.distance,
            e.init.wrapping_sub(imm),
        );
    }
    dfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dfg_json_round_trips(
        nodes in 1usize..20,
        back_edges in 0usize..3,
        memory_ops in any::<bool>(),
        seed in any::<u64>(),
        imm in any::<i64>(),
    ) {
        let config = RandomDfgConfig { nodes, back_edges, memory_ops, seed };
        let dfg = decorated_dfg(&config, imm, seed ^ 0xABCD);
        let text = dfg_to_json(&dfg).to_string();
        let reparsed = json::parse(&text).expect("writer output parses");
        let decoded = dfg_from_json(&reparsed).expect("decodes");
        prop_assert_eq!(&decoded, &dfg);
        // Stability: encoding the decoded graph reproduces the same text.
        prop_assert_eq!(dfg_to_json(&decoded).to_string(), text);
    }

    #[test]
    fn cgra_json_round_trips(
        rows in 1u16..9, cols in 1u16..9,
        topo in any::<u8>(), regs in any::<u8>(), policy in any::<u8>(),
    ) {
        let cgra = arbitrary_cgra(rows, cols, topo, regs, policy);
        let text = cgra_to_json(&cgra).to_string();
        let decoded = cgra_from_json(&json::parse(&text).unwrap()).expect("decodes");
        prop_assert_eq!(decoded, cgra);
    }

    #[test]
    fn map_requests_round_trip(
        nodes in 1usize..12,
        seed in any::<u64>(),
        id in any::<i64>(),
        timeout_ms in 0u64..1_000_000,
        with_timeout in any::<bool>(),
        rows in 1u16..6,
    ) {
        let config = RandomDfgConfig { nodes, back_edges: 1, memory_ops: false, seed };
        let request = MapRequest {
            id: Some(id),
            name: format!("job \"{seed}\" ✓"),
            dfg: random_dfg(&config),
            cgra: arbitrary_cgra(rows, rows, seed as u8, 4, seed as u8),
            timeout_ms: with_timeout.then_some(timeout_ms),
        };
        let line = request.to_json().to_string();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        match parse_request(&line).expect("request decodes") {
            Request::Map(decoded) => prop_assert_eq!(*decoded, request),
            other => prop_assert!(false, "wrong request kind: {:?}", other),
        }
    }

    /// The JSON layer itself is total over arbitrary value trees built
    /// from integers and strings: print→parse is the identity.
    #[test]
    fn json_value_trees_round_trip(a in any::<i64>(), b in any::<u64>(), s in any::<u64>()) {
        let tree = Json::obj(vec![
            ("int", Json::Int(a)),
            ("nested", Json::Arr(vec![
                Json::Int(i64::MIN),
                Json::Int(i64::MAX),
                Json::Str(format!("\u{8}\u{c}\"\\/{s}\u{7f}")),
                Json::Null,
                Json::Bool(b.is_multiple_of(2)),
            ])),
            ("float", Json::Float((b as f64) / 7.0)),
        ]);
        let reparsed = json::parse(&tree.to_string()).expect("parses");
        prop_assert_eq!(reparsed, tree);
    }
}

/// Op coverage is exhaustive, not sampled: every variant must have a wire
/// name that parses back.
#[test]
fn every_op_round_trips_by_name() {
    use satmapit_service::wire::{op_from_name, op_name};
    for op in [
        Op::Const,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Rem,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Not,
        Op::Neg,
        Op::Abs,
        Op::Shl,
        Op::Shr,
        Op::Ror,
        Op::Min,
        Op::Max,
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Select,
        Op::Load,
        Op::Store,
        Op::Route,
    ] {
        assert_eq!(op_from_name(op_name(op)), Some(op), "{op:?}");
    }
}
