//! A minimal blocking client for the daemon's line protocol, used by
//! `satmapit submit` and the loopback tests.

use crate::json::{self, Json};
use crate::wire::MapRequest;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed.
    Io(io::Error),
    /// The server's reply was not a parseable response line.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl ClientError {
    /// True when the failure was a socket timeout (connect, read or
    /// write deadline from [`Client::connect_timeout`] expiring), so
    /// callers can report the budget instead of a raw OS error.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ClientError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            )
        )
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a mapping daemon. Requests are answered in order on
/// a connection, so a `Client` is a simple synchronous round-trip box;
/// open several for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7421`).
    ///
    /// # Errors
    ///
    /// Standard connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`Client::connect`] with a budget applied to the connect itself
    /// and, as read/write timeouts, to every later round-trip. A stalled
    /// or unreachable daemon then fails with a timeout error instead of
    /// hanging the caller forever.
    ///
    /// # Errors
    ///
    /// Standard connection failures, an unresolvable address, or the
    /// connect not completing within `timeout`.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("address `{addr}` did not resolve")))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request document and reads one response document.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply that is not one line of JSON.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, ClientError> {
        let mut line = request.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        json::parse(reply.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a mapping job and returns the raw response.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn map(&mut self, request: &MapRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.to_json())
    }

    /// Fetches the daemon's statistics document.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("stats".into()))]))
    }

    /// Probes daemon health.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("health".into()))]))
    }

    /// Drains the daemon's flight recorder (see the `trace` op): the
    /// response reports the collected event count and, when the daemon
    /// has a trace directory, the Chrome trace file it wrote.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn trace(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("trace".into()))]))
    }

    /// Asks the daemon to drain, compact its caches and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))
    }
}
