//! A minimal blocking client for the daemon's line protocol, used by
//! `satmapit submit` and the loopback tests.

use crate::json::{self, Json};
use crate::wire::MapRequest;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed.
    Io(io::Error),
    /// The server's reply was not a parseable response line.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl ClientError {
    /// True when the failure was a socket timeout (connect, read or
    /// write deadline from [`Client::connect_timeout`] expiring), so
    /// callers can report the budget instead of a raw OS error.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ClientError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            )
        )
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a mapping daemon. Requests are answered in order on
/// a connection, so a `Client` is a simple synchronous round-trip box;
/// open several for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7421`).
    ///
    /// # Errors
    ///
    /// Standard connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`Client::connect`] with a budget applied to the connect itself
    /// and, as read/write timeouts, to every later round-trip. A stalled
    /// or unreachable daemon then fails with a timeout error instead of
    /// hanging the caller forever.
    ///
    /// # Errors
    ///
    /// Standard connection failures, an unresolvable address, or the
    /// connect not completing within `timeout`.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("address `{addr}` did not resolve")))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request document and reads one response document.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply that is not one line of JSON.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, ClientError> {
        let mut line = request.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            // EOF mid-roundtrip is a transport failure, not a protocol
            // one: the daemon (or the network) dropped the connection,
            // which an idempotent caller may retry on a fresh socket.
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        json::parse(reply.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a mapping job and returns the raw response.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn map(&mut self, request: &MapRequest) -> Result<Json, ClientError> {
        self.roundtrip(&request.to_json())
    }

    /// Fetches the daemon's statistics document.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("stats".into()))]))
    }

    /// Probes daemon health.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("health".into()))]))
    }

    /// Drains the daemon's flight recorder (see the `trace` op): the
    /// response reports the collected event count and, when the daemon
    /// has a trace directory, the Chrome trace file it wrote.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn trace(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("trace".into()))]))
    }

    /// Asks the daemon to drain, compact its caches and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))
    }

    /// Wraps the connection parameters in a [`RetryClient`] that
    /// reconnects and retries *idempotent* requests (map, stats, health)
    /// with jittered exponential backoff. `attempts` counts total tries;
    /// `1` behaves exactly like a plain client.
    #[must_use]
    pub fn with_retry(addr: &str, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            policy,
            conn: None,
            rng: 0,
        }
    }
}

/// How [`RetryClient`] paces its attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries per request, including the first. `1` = no retry.
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
    /// Ceiling the doubling saturates at.
    pub max_backoff: Duration,
    /// Per-socket connect/read/write deadline (see
    /// [`Client::connect_timeout`]). `None` connects without deadlines.
    pub socket_timeout: Option<Duration>,
    /// Seeds the jitter stream, so a given policy retries on a
    /// reproducible schedule. Two clients with different seeds desync,
    /// which is the point of jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            socket_timeout: None,
            seed: 0x5a71_ca11,
        }
    }
}

/// A [`Client`] wrapper that re-establishes the connection and replays
/// the request after transport failures.
///
/// Only *idempotent* operations are exposed: `map` (solves are
/// deterministic and cached, so a replayed submit returns the same
/// answer), `stats` and `health` (pure reads). `shutdown` and `trace`
/// are deliberately absent — replaying a shutdown races the daemon's
/// exit, and `trace` drains a buffer, so a retry after a half-delivered
/// reply loses events.
///
/// Protocol errors (a parseable-but-hostile reply) are **not** retried:
/// the bytes arrived fine, so a second attempt would get the same
/// answer.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: u64,
}

impl RetryClient {
    /// Submits a mapping job, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted.
    pub fn map(&mut self, request: &MapRequest) -> Result<Json, ClientError> {
        self.retrying(&request.to_json())
    }

    /// Fetches the statistics document, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.retrying(&Json::obj(vec![("op", Json::Str("stats".into()))]))
    }

    /// Probes daemon health, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.retrying(&Json::obj(vec![("op", Json::Str("health".into()))]))
    }

    fn connect(&self) -> Result<Client, ClientError> {
        match self.policy.socket_timeout {
            Some(t) => Client::connect_timeout(&self.addr, t),
            None => Client::connect(&self.addr),
        }
    }

    fn retrying(&mut self, request: &Json) -> Result<Json, ClientError> {
        let attempts = self.policy.attempts.max(1);
        let mut backoff = self.policy.backoff;
        for attempt in 1..=attempts {
            let outcome = match self.conn.take() {
                Some(mut conn) => {
                    let r = conn.roundtrip(request);
                    if r.is_ok() {
                        self.conn = Some(conn);
                    }
                    r
                }
                None => self.connect().and_then(|mut conn| {
                    let r = conn.roundtrip(request);
                    if r.is_ok() {
                        self.conn = Some(conn);
                    }
                    r
                }),
            };
            match outcome {
                Ok(reply) => return Ok(reply),
                Err(e @ ClientError::Protocol(_)) => return Err(e),
                Err(e) => {
                    if attempt == attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.jittered(backoff));
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
        unreachable!("the final attempt either returned or erred")
    }

    /// A deterministic draw in `[d/2, d]`: full-jitter halves the
    /// thundering herd without ever collapsing the delay to zero.
    fn jittered(&mut self, d: Duration) -> Duration {
        // xorshift64* seeded from the policy; good enough to desync
        // clients, and deterministic so tests can pin the schedule.
        if self.rng == 0 {
            self.rng = self.policy.seed | 1;
        }
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let half = d / 2;
        let span = d.saturating_sub(half).as_nanos() as u64;
        if span == 0 {
            return d;
        }
        half + Duration::from_nanos(x % (span + 1))
    }
}
