//! # satmapit-service
//!
//! Mapping-as-a-service: a long-running daemon that serves SAT-MapIt
//! mapping requests over a line-delimited JSON protocol on TCP, backed by
//! the parallel batch [`Engine`](satmapit_engine::Engine) and its
//! disk-persistent result and proven-II-bound caches.
//!
//! The paper frames mapping as a compiler-invoked batch step; this crate
//! turns it into a shared service so the expensive SAT work amortizes
//! across compiler invocations, users and machine restarts: a kernel
//! mapped once is answered from the cache forever after — including after
//! a daemon restart, via the versioned, checksummed stores of
//! [`satmapit_engine::persist`].
//!
//! ## Protocol (one JSON object per line; see `docs/service.md`)
//!
//! | request | answer |
//! |---|---|
//! | `{"op":"map","name":…,"dfg":{…},"cgra":{…},"timeout_ms":…}` | the mapping (or failure), fingerprint, cache provenance |
//! | `{"op":"stats"}` | cache counters, queue depth, per-outcome latency histograms |
//! | `{"op":"health"}` | liveness probe (includes the server version) |
//! | `{"op":"trace"}` | drain the flight recorder (requires `--trace-dir`) |
//! | `{"op":"shutdown"}` | drain, compact caches, exit |
//!
//! ## Example (loopback)
//!
//! ```
//! use satmapit_service::{Client, Server, ServerConfig};
//! use satmapit_service::wire::MapRequest;
//! use satmapit_cgra::Cgra;
//! use satmapit_dfg::{Dfg, Op};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut dfg = Dfg::new("pair");
//! let a = dfg.add_const(1);
//! let b = dfg.add_node(Op::Neg);
//! dfg.add_edge(a, b, 0);
//!
//! let mut client = Client::connect(&addr).unwrap();
//! let reply = client
//!     .map(&MapRequest {
//!         id: Some(1),
//!         name: "pair@2x2".into(),
//!         dfg,
//!         cgra: Cgra::square(2),
//!         timeout_ms: None,
//!     })
//!     .unwrap();
//! assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, RetryClient, RetryPolicy};
pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig};
pub use wire::{MapRequest, Request, WireError};
