//! The mapping daemon: a TCP listener, a bounded admission queue, and a
//! worker pool driving the batch [`Engine`].
//!
//! Concurrency model, deliberately simple and fully `std`:
//!
//! * one thread per client connection reads request lines and writes
//!   response lines (requests on a single connection are answered in
//!   order; concurrency comes from multiple connections);
//! * `map` requests are **admitted** into a bounded queue — a full queue
//!   answers `queue full` immediately (backpressure) instead of
//!   buffering unboundedly;
//! * a fixed pool of worker threads pops the queue and solves through
//!   the shared [`Engine`], so cache hits and in-flight deduplication
//!   work across all clients;
//! * per-request `timeout_ms` becomes a wall-clock deadline at admission
//!   and is mapped onto the solver's `SolveLimits` through
//!   [`Engine::map_with_deadline`]; a deadline that is *already expired*
//!   at admission (`timeout_ms: 0`) is answered immediately instead of
//!   wasting a queue slot and a worker wakeup — with the cached result
//!   when one exists (matching the engine, which checks the cache before
//!   the clock), and a timeout response otherwise;
//! * `shutdown` drains the queue, compacts the persistent caches and
//!   stops the accept loop.
//!
//! ## Panic isolation
//!
//! A panicking solve must cost one request, not the daemon: each worker
//! wraps the per-item solve in `catch_unwind` and turns a panic into a
//! per-request `error` response, and every queue-lock acquisition
//! recovers from poisoning (the queue is a `VecDeque` of fully-owned
//! items — any interrupted mutation is a single push/pop, so the data is
//! coherent). Before this, one panicking worker poisoned `inner.queue`
//! and every later `.expect("queue poisoned")` — connection handlers and
//! workers alike — aborted, amplifying one bad request into a dead
//! daemon.

use crate::json::Json;
use crate::wire::{self, MapRequest, Request};
use satmapit_engine::{Engine, EngineConfig};
use satmapit_obs as obs;
use satmapit_obs::Histogram;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Log target for daemon lifecycle and per-request warnings.
const LOG_TARGET: &str = "satmapit::service";

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted requests. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with backpressure.
    pub queue_capacity: usize,
    /// The engine configuration every request is solved under (it is part
    /// of the cache key, so a daemon answers consistently for its
    /// lifetime). Leave `engine.workers` at 0 (the default) to let the
    /// server divide the hardware threads across its worker pool — each
    /// concurrent solve then gets an equal share instead of every solve
    /// claiming every core (quadratic oversubscription under load). A
    /// non-zero value is an explicit per-solve override.
    pub engine: EngineConfig,
    /// Directory for the persistent result/bound stores; `None` keeps the
    /// caches in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Directory the `trace` request writes Chrome trace-JSON files
    /// into. Setting it turns the flight recorder on for the daemon's
    /// lifetime (tracing is a process-wide observer switch — it never
    /// joins a cache key or changes an answer); `None` leaves tracing
    /// off and span recording at its zero-cost disabled path.
    pub trace_dir: Option<PathBuf>,
    /// Solves slower than this dump their per-II ladder trace through
    /// the structured logger at warn level, so one slow request can be
    /// diagnosed from the daemon's stderr alone. `None` disables.
    pub slow_solve: Option<Duration>,
    /// Fault injection for the panic-isolation regression tests: a worker
    /// panics instead of solving when a `map` request's name equals this
    /// value. Production configs leave it `None`; it exists because no
    /// well-formed request should be able to panic the engine, yet the
    /// daemon must survive one that somehow does.
    #[doc(hidden)]
    pub panic_on_name: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            engine: EngineConfig::default(),
            cache_dir: None,
            trace_dir: None,
            slow_solve: None,
            panic_on_name: None,
        }
    }
}

struct WorkItem {
    request: MapRequest,
    deadline: Option<Instant>,
    /// When the request entered the queue — its wait until a worker
    /// pops it is reported as `queue_us`, separately from solve time.
    admitted: Instant,
    reply: mpsc::Sender<Json>,
}

/// Per-outcome solve-latency histograms (microseconds). One mutex per
/// class: recording locks only the class the finished request lands
/// in, for the duration of one bucket increment — far from any solver
/// hot path.
struct Latency {
    /// Answered by the in-memory result cache.
    memory_hit: Mutex<Histogram>,
    /// Answered by an entry loaded from the on-disk store.
    persistent_hit: Mutex<Histogram>,
    /// Solved to a definitive answer (mapped or deterministic failure).
    solved: Mutex<Histogram>,
    /// Solved to a wall-clock timeout (not memoized by the engine).
    timeout: Mutex<Histogram>,
    /// The solve panicked and was answered with an error response.
    error: Mutex<Histogram>,
    /// Admission-to-worker-pop wait, across all queued requests.
    queue_wait: Mutex<Histogram>,
}

impl Latency {
    fn new() -> Latency {
        Latency {
            memory_hit: Mutex::new(Histogram::new()),
            persistent_hit: Mutex::new(Histogram::new()),
            solved: Mutex::new(Histogram::new()),
            timeout: Mutex::new(Histogram::new()),
            error: Mutex::new(Histogram::new()),
            queue_wait: Mutex::new(Histogram::new()),
        }
    }
}

fn record_us(hist: &Mutex<Histogram>, us: u64) {
    hist.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(us);
}

fn histogram_json(hist: &Mutex<Histogram>) -> Json {
    snapshot_json(
        &hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot(),
    )
}

fn snapshot_json(snap: &obs::Snapshot) -> Json {
    Json::obj(vec![
        ("count", Json::Int(snap.count as i64)),
        ("total_us", Json::Int(snap.sum as i64)),
        ("min_us", Json::Int(snap.min as i64)),
        ("max_us", Json::Int(snap.max as i64)),
        ("p50_us", Json::Int(snap.p50 as i64)),
        ("p90_us", Json::Int(snap.p90 as i64)),
        ("p99_us", Json::Int(snap.p99 as i64)),
    ])
}

/// `<crate version>+g<git hash>`; the hash is resolved by `build.rs`
/// (`unknown` outside a git checkout, in which case it is omitted).
fn version_string() -> String {
    match env!("SATMAPIT_GIT_HASH") {
        "unknown" => env!("CARGO_PKG_VERSION").to_string(),
        hash => format!("{}+g{hash}", env!("CARGO_PKG_VERSION")),
    }
}

struct Inner {
    engine: Engine,
    addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    stop: AtomicBool,
    queue: Mutex<VecDeque<WorkItem>>,
    queue_cv: Condvar,
    started: Instant,
    requests: AtomicU64,
    rejected: AtomicU64,
    /// Per-outcome solve latencies; the legacy `solves` stats block is
    /// derived from the `solved` + `timeout` classes.
    latency: Latency,
    /// Where `trace` requests write their Chrome trace files (`None`
    /// answers with event counts only).
    trace_dir: Option<PathBuf>,
    /// Sequence number for trace file names.
    trace_seq: AtomicU64,
    /// Slow-solve threshold (see [`ServerConfig::slow_solve`]).
    slow_solve: Option<Duration>,
    /// Solves that panicked and were answered with an `error` response
    /// instead of taking the daemon down.
    panics: AtomicU64,
    /// Requests answered with an immediate timeout at admission because
    /// their deadline had already expired (`timeout_ms: 0`).
    expired_at_admission: AtomicU64,
    /// Test-only fault injection (see [`ServerConfig::panic_on_name`]).
    panic_on_name: Option<String>,
}

/// Locks the admission queue, recovering from poisoning: the queue holds
/// fully-owned items and every mutation is a single push/pop, so a
/// panicking holder cannot leave it incoherent — and refusing to recover
/// turned one panic into a daemon-wide abort (each later
/// `.expect("queue poisoned")` re-panicked).
fn lock_queue<'a>(inner: &'a Inner) -> MutexGuard<'a, VecDeque<WorkItem>> {
    inner.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running mapping daemon.
pub struct Server {
    listener: TcpListener,
    inner: Inner,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7421`, port `0` for ephemeral) and
    /// opens the engine — loading persistent caches when
    /// [`ServerConfig::cache_dir`] is set. Load warnings are printed to
    /// stderr; they indicate skipped corrupt records, not fatal state.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the cache directory is
    /// unusable.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let workers = if config.workers > 0 {
            config.workers
        } else {
            hardware
        };
        let mut engine_config = config.engine.clone();
        if engine_config.workers == 0 {
            // Share the hardware: `workers` requests may solve at once, so
            // each race gets an equal slice of the thread budget. (The
            // worker count is not part of the result fingerprint, so this
            // never changes cache keys or answers.)
            engine_config.workers = (hardware / workers).max(1);
        }
        let engine = match &config.cache_dir {
            Some(dir) => Engine::with_cache_dir(engine_config, dir)?,
            None => Engine::new(engine_config),
        };
        for warning in engine.load_warnings() {
            obs::warn!(LOG_TARGET, "{warning}");
        }
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
            obs::trace::set_enabled(true);
            obs::info!(
                LOG_TARGET,
                "flight recorder on, traces in {}",
                dir.display()
            );
        }
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Inner {
                engine,
                addr,
                workers,
                queue_capacity: config.queue_capacity.max(1),
                stop: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                started: Instant::now(),
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                latency: Latency::new(),
                trace_dir: config.trace_dir,
                trace_seq: AtomicU64::new(0),
                slow_solve: config.slow_solve,
                panics: AtomicU64::new(0),
                expired_at_admission: AtomicU64::new(0),
                panic_on_name: config.panic_on_name,
            },
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The engine serving this daemon (e.g. for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// admits work, answers. On return the queue is drained and the
    /// persistent caches are compacted.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures and the final compaction
    /// error, if any.
    pub fn run(self) -> io::Result<()> {
        let inner = &self.inner;
        let listener = &self.listener;
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..inner.workers {
                scope.spawn(|| worker_loop(inner));
            }
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    // ordering: shutdown handshake — `shutdown` stores the
                    // flag (SeqCst) *before* making the wake-up connection,
                    // and this accept loop must observe that store once
                    // accept() returns, or it strands forever re-accepting.
                    // The syscall pair is not a formal synchronization edge
                    // in the memory model, so this cold one-shot latch
                    // deliberately keeps SeqCst rather than relying on it.
                    Err(e) if inner.stop.load(Ordering::SeqCst) => {
                        let _ = e;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                // ordering: same shutdown handshake as above — this load
                // pairs with the SeqCst store in the `shutdown` request.
                if inner.stop.load(Ordering::SeqCst) {
                    break; // the wake-up connection after `shutdown`
                }
                scope.spawn(move || {
                    if let Err(e) = handle_connection(inner, stream) {
                        // Client went away mid-conversation: routine.
                        let _ = e;
                    }
                });
            }
            inner.queue_cv.notify_all();
            Ok(())
        })?;
        // A final flight-recorder dump so spans recorded since the last
        // explicit `trace` drain survive the shutdown.
        if self.inner.trace_dir.is_some() {
            let events = obs::trace::drain();
            if !events.is_empty() {
                if let Err(e) = write_trace_file(&self.inner, &events) {
                    obs::warn!(LOG_TARGET, "failed to write shutdown trace: {e}");
                }
            }
        }
        self.inner.engine.compact_persistent()
    }
}

/// Writes `events` as Chrome trace JSON into the daemon's trace
/// directory, returning the path.
fn write_trace_file(inner: &Inner, events: &[obs::Event]) -> io::Result<PathBuf> {
    let dir = inner
        .trace_dir
        .as_ref()
        .expect("write_trace_file requires a trace dir");
    // ordering: unique-id ticket for trace filenames.
    let seq = inner.trace_seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("trace-{seq:04}.json"));
    std::fs::write(&path, obs::trace::export_chrome(events))?;
    Ok(path)
}

fn worker_loop(inner: &Inner) {
    loop {
        let item = {
            let mut queue = lock_queue(inner);
            loop {
                if let Some(item) = queue.pop_front() {
                    break item;
                }
                // ordering: polled inside a 50ms wait_timeout loop; a
                // stale read delays drain-and-exit by one poll, and the
                // queue itself is handed off through the mutex. Relaxed
                // is sufficient (downgraded from SeqCst in the audit).
                if inner.stop.load(Ordering::Relaxed) {
                    return; // stop + empty queue: drained
                }
                // The timeout guards against a missed notification racing
                // the stop flag.
                queue = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // Queue wait ends here; solve time starts here. Reporting the
        // two separately (`queue_us` vs `elapsed_us`) keeps a loaded
        // daemon's solve latencies honest — before the split, a fast
        // solve behind a deep queue was indistinguishable from a slow
        // solve.
        let queue_us = item.admitted.elapsed().as_micros() as u64;
        record_us(&inner.latency.queue_wait, queue_us);
        let mut span = obs::trace::enabled().then(|| {
            obs::trace::Span::begin(
                obs::trace::Category::Request,
                &format!("request {}", item.request.name),
            )
        });
        let t0 = Instant::now();
        // Panic isolation: a solve that unwinds costs this request an
        // `error` response, never the daemon. `AssertUnwindSafe` is
        // justified because nothing from the broken call is reused — the
        // engine recovers its own locks (its in-flight guard runs on
        // unwind), and this worker immediately returns to the queue.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inner
                .panic_on_name
                .as_deref()
                .is_some_and(|name| name == item.request.name)
            {
                panic!("fault injection: request `{}`", item.request.name);
            }
            inner
                .engine
                .map_with_deadline(&item.request.dfg, &item.request.cgra, item.deadline)
        }));
        let elapsed = t0.elapsed();
        let elapsed_us = elapsed.as_micros() as u64;
        let response = match solved {
            Ok(served) => {
                let timed_out = matches!(
                    served.outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                );
                let (class, hist) = if served.persistent {
                    ("persistent_hit", &inner.latency.persistent_hit)
                } else if served.cached {
                    ("memory_hit", &inner.latency.memory_hit)
                } else if timed_out {
                    ("timeout", &inner.latency.timeout)
                } else {
                    ("solved", &inner.latency.solved)
                };
                record_us(hist, elapsed_us);
                if let Some(span) = &mut span {
                    span.arg("queue_us", queue_us as i64);
                    span.arg_str("class", class);
                }
                if inner.slow_solve.is_some_and(|limit| elapsed >= limit) && !served.cached {
                    slow_solve_report(&item.request.name, elapsed, queue_us, &served.outcome);
                }
                wire::map_response(
                    item.request.id,
                    &item.request.name,
                    served.key,
                    &served.outcome,
                    served.cached,
                    served.persistent,
                    elapsed_us,
                    queue_us,
                )
            }
            Err(panic) => {
                // ordering: monotone telemetry counter.
                inner.panics.fetch_add(1, Ordering::Relaxed);
                record_us(&inner.latency.error, elapsed_us);
                if let Some(span) = &mut span {
                    span.arg("queue_us", queue_us as i64);
                    span.arg_str("class", "error");
                }
                let what = panic_message(panic.as_ref());
                obs::warn!(
                    LOG_TARGET,
                    "solve for `{}` panicked ({what}); answered with an error",
                    item.request.name
                );
                wire::error_response(
                    item.request.id,
                    &format!("internal error: solve panicked ({what})"),
                )
            }
        };
        drop(span);
        // A dead receiver means the client hung up; nothing to do.
        let _ = item.reply.send(response);
    }
}

/// Dumps a slow request's per-II ladder trace through the logger: one
/// warn line summarising the request, then the attempts that made it
/// slow, newest-first context a human can act on without a trace file.
fn slow_solve_report(
    name: &str,
    elapsed: Duration,
    queue_us: u64,
    outcome: &satmapit_engine::EngineOutcome,
) {
    let attempts = &outcome.outcome.attempts;
    let ladder: Vec<String> = attempts
        .iter()
        .map(|a| {
            format!(
                "ii={} {} {}us",
                a.ii,
                wire::attempt_outcome_name(&a.outcome),
                a.elapsed.as_micros()
            )
        })
        .collect();
    obs::warn!(
        LOG_TARGET,
        "slow solve `{name}`: {}us solving (+{queue_us}us queued), {} rungs [{}]",
        elapsed.as_micros(),
        attempts.len(),
        ladder.join(", ")
    );
}

/// Best-effort text of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else is reported generically).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn stats_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    // The legacy `solves` block covers everything a worker actually
    // solved (definitive answers and timeouts; panics excluded, as
    // before the histograms) — derived by merging the two classes so
    // its totals stay exact.
    let solves = {
        let mut merged = inner
            .latency
            .solved
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        merged.merge(
            &inner
                .latency
                .timeout
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        merged
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("version", Json::Str(version_string())),
        (
            "cache",
            wire::cache_stats_to_json(&inner.engine.cache_stats()),
        ),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_capacity", Json::Int(inner.queue_capacity as i64)),
        ("workers", Json::Int(inner.workers as i64)),
        (
            "requests",
            // ordering: this and the loads below read independent
            // monotone telemetry counters; the stats snapshot is
            // advisory and needs no cross-counter consistency.
            Json::Int(inner.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected",
            Json::Int(inner.rejected.load(Ordering::Relaxed) as i64),
        ),
        (
            "panics",
            Json::Int(inner.panics.load(Ordering::Relaxed) as i64),
        ),
        (
            "expired_at_admission",
            Json::Int(inner.expired_at_admission.load(Ordering::Relaxed) as i64),
        ),
        (
            "solves",
            Json::obj(vec![
                ("count", Json::Int(solves.count() as i64)),
                ("total_us", Json::Int(solves.sum() as i64)),
                ("mean_us", Json::Int(solves.mean() as i64)),
                ("max_us", Json::Int(solves.max().unwrap_or(0) as i64)),
            ]),
        ),
        (
            "latency",
            Json::obj(vec![
                ("memory_hit", histogram_json(&inner.latency.memory_hit)),
                (
                    "persistent_hit",
                    histogram_json(&inner.latency.persistent_hit),
                ),
                ("solved", histogram_json(&inner.latency.solved)),
                ("timeout", histogram_json(&inner.latency.timeout)),
                ("error", histogram_json(&inner.latency.error)),
                ("queue_wait", histogram_json(&inner.latency.queue_wait)),
            ]),
        ),
        (
            "trace",
            Json::obj(vec![
                ("enabled", Json::Bool(obs::trace::enabled())),
                ("dropped", Json::Int(obs::trace::dropped() as i64)),
            ]),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

/// Drains the flight recorder. With a trace directory the events land
/// in a fresh Chrome trace file (the response carries its path); either
/// way the response reports how many events were collected and how many
/// the bounded rings dropped since startup.
fn trace_response(inner: &Inner) -> Json {
    if !obs::trace::enabled() {
        return wire::error_response(
            None,
            "tracing is disabled; start the daemon with --trace-dir",
        );
    }
    let events = obs::trace::drain();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("events", Json::Int(events.len() as i64)),
        ("dropped", Json::Int(obs::trace::dropped() as i64)),
    ];
    if inner.trace_dir.is_some() {
        match write_trace_file(inner, &events) {
            Ok(path) => pairs.push(("path", Json::Str(path.display().to_string()))),
            Err(e) => {
                return wire::error_response(None, &format!("failed to write trace file: {e}"))
            }
        }
    }
    Json::obj(pairs)
}

fn health_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("status", Json::Str("healthy".to_string())),
        ("version", Json::Str(version_string())),
        ("queue_depth", Json::Int(queue_depth as i64)),
        (
            "persistent_cache",
            Json::Bool(inner.engine.cache_dir().is_some()),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

/// The response for a request whose deadline was already expired when it
/// arrived: the same shape an engine-produced timeout takes (`ok: true`,
/// `result.status = "failed"`, `kind = "timeout"`), with `at_ii = 0`
/// marking that no II was ever attempted. Timeouts are never cached, so
/// skipping the engine changes nothing an observer could distinguish —
/// except the latency.
fn expired_response(inner: &Inner, request: &MapRequest) -> Json {
    let key = satmapit_engine::fingerprint::fingerprint(
        &request.dfg,
        &request.cgra,
        inner.engine.config(),
    );
    let outcome = satmapit_engine::EngineOutcome {
        outcome: satmapit_core::MapOutcome {
            result: Err(satmapit_core::MapFailure::Timeout { at_ii: 0 }),
            attempts: Vec::new(),
            elapsed: Duration::ZERO,
        },
        stats: satmapit_engine::RaceStats::default(),
        proven_unmappable: false,
    };
    wire::map_response(request.id, &request.name, key, &outcome, false, false, 0, 0)
}

fn write_line(stream: &mut TcpStream, value: &Json) -> io::Result<()> {
    let mut line = value.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn handle_connection(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    // The read timeout lets the thread observe the stop flag even while a
    // client holds the connection open silently.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        // ordering: polled every ≤100ms via the read timeout; a stale
        // read keeps the connection one extra poll, nothing more.
        // Relaxed is sufficient (downgraded from SeqCst in the audit).
        if inner.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Raw bytes, not `read_line`: a read timeout may strike in the
        // middle of a multi-byte UTF-8 sequence, and per-call validation
        // would reject the split prefix. Validation happens once the
        // whole line is in hand.
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return Ok(()), // EOF: client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // `read_until` keeps already-read bytes in `line`; loop
                // and keep accumulating until the newline arrives.
                continue;
            }
            Err(e) => return Err(e),
        }
        if line.last() != Some(&b'\n') {
            // EOF in the middle of a line; treat like a close.
            return Ok(());
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            write_line(&mut writer, &wire::error_response(None, "invalid UTF-8"))?;
            line.clear();
            continue;
        };
        // Owned: the request may outlive `line`, which is reused.
        let trimmed = text.trim().to_string();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        // ordering: monotone telemetry counter.
        inner.requests.fetch_add(1, Ordering::Relaxed);
        let response = match wire::parse_request(&trimmed) {
            Err(e) => wire::error_response(None, &e.to_string()),
            Ok(Request::Stats) => stats_response(inner),
            Ok(Request::Health) => health_response(inner),
            Ok(Request::Trace) => trace_response(inner),
            Ok(Request::Shutdown) => {
                // ordering: shutdown handshake — this store must be
                // visible to the accept loop by the time the wake-up
                // connection (made by `shutdown()`) is accepted; see the
                // paired SeqCst loads in `run`. Pollers elsewhere read
                // the flag Relaxed, which this store also serves.
                inner.stop.store(true, Ordering::SeqCst);
                inner.queue_cv.notify_all();
                let ack = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("status", Json::Str("shutting_down".to_string())),
                ]);
                write_line(&mut writer, &ack)?;
                // Unblock the accept loop so `run` can wind down.
                let _ = TcpStream::connect(inner.addr);
                return Ok(());
            }
            Ok(Request::Map(request)) => {
                let deadline = request
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let id = request.id;
                // A deadline already expired at admission (`timeout_ms:
                // 0`, or a degenerate clock) can only ever produce a
                // timeout *for a cold problem* — answering it here saves
                // the queue slot, the worker wakeup, and the client's
                // wait behind real work. A cached answer is still served
                // (the engine's own deadline handling checks the cache
                // before the clock, and "answer only if you have it
                // already" is exactly what a zero budget requests).
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    // ordering: monotone telemetry counter.
                    inner.expired_at_admission.fetch_add(1, Ordering::Relaxed);
                    let response = match inner.engine.lookup_cached(&request.dfg, &request.cgra) {
                        Some(served) => wire::map_response(
                            id,
                            &request.name,
                            served.key,
                            &served.outcome,
                            served.cached,
                            served.persistent,
                            0,
                            0,
                        ),
                        None => expired_response(inner, &request),
                    };
                    write_line(&mut writer, &response)?;
                    line.clear();
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                let admitted = {
                    let mut queue = lock_queue(inner);
                    if queue.len() >= inner.queue_capacity {
                        false
                    } else {
                        queue.push_back(WorkItem {
                            request: *request,
                            deadline,
                            admitted: Instant::now(),
                            reply: tx,
                        });
                        true
                    }
                };
                if admitted {
                    inner.queue_cv.notify_all();
                    match rx.recv() {
                        Ok(response) => response,
                        // Workers only drop a pending sender on shutdown.
                        Err(_) => wire::error_response(id, "server shutting down"),
                    }
                } else {
                    // ordering: monotone telemetry counter.
                    inner.rejected.fetch_add(1, Ordering::Relaxed);
                    wire::error_response(
                        id,
                        &format!("queue full ({} pending); retry later", inner.queue_capacity),
                    )
                }
            }
        };
        write_line(&mut writer, &response)?;
        line.clear();
    }
}
