//! The mapping daemon: a TCP listener, a bounded admission queue, and a
//! worker pool driving the batch [`Engine`].
//!
//! Concurrency model, deliberately simple and fully `std`:
//!
//! * one thread per client connection reads request lines and writes
//!   response lines (requests on a single connection are answered in
//!   order; concurrency comes from multiple connections);
//! * `map` requests are **admitted** into a bounded queue — a full queue
//!   answers `queue full` immediately (backpressure) instead of
//!   buffering unboundedly;
//! * a fixed pool of worker threads pops the queue and solves through
//!   the shared [`Engine`], so cache hits and in-flight deduplication
//!   work across all clients;
//! * per-request `timeout_ms` becomes a wall-clock deadline at admission
//!   and is mapped onto the solver's `SolveLimits` through
//!   [`Engine::map_with_deadline`];
//! * `shutdown` drains the queue, compacts the persistent caches and
//!   stops the accept loop.

use crate::json::Json;
use crate::wire::{self, MapRequest, Request};
use satmapit_engine::{Engine, EngineConfig};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted requests. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with backpressure.
    pub queue_capacity: usize,
    /// The engine configuration every request is solved under (it is part
    /// of the cache key, so a daemon answers consistently for its
    /// lifetime). Leave `engine.workers` at 0 (the default) to let the
    /// server divide the hardware threads across its worker pool — each
    /// concurrent solve then gets an equal share instead of every solve
    /// claiming every core (quadratic oversubscription under load). A
    /// non-zero value is an explicit per-solve override.
    pub engine: EngineConfig,
    /// Directory for the persistent result/bound stores; `None` keeps the
    /// caches in memory only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            engine: EngineConfig::default(),
            cache_dir: None,
        }
    }
}

struct WorkItem {
    request: MapRequest,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Json>,
}

struct Inner {
    engine: Engine,
    addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    stop: AtomicBool,
    queue: Mutex<VecDeque<WorkItem>>,
    queue_cv: Condvar,
    started: Instant,
    requests: AtomicU64,
    rejected: AtomicU64,
    solves: AtomicU64,
    solve_total_us: AtomicU64,
    solve_max_us: AtomicU64,
}

/// A bound, not-yet-running mapping daemon.
pub struct Server {
    listener: TcpListener,
    inner: Inner,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7421`, port `0` for ephemeral) and
    /// opens the engine — loading persistent caches when
    /// [`ServerConfig::cache_dir`] is set. Load warnings are printed to
    /// stderr; they indicate skipped corrupt records, not fatal state.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the cache directory is
    /// unusable.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let workers = if config.workers > 0 {
            config.workers
        } else {
            hardware
        };
        let mut engine_config = config.engine.clone();
        if engine_config.workers == 0 {
            // Share the hardware: `workers` requests may solve at once, so
            // each race gets an equal slice of the thread budget. (The
            // worker count is not part of the result fingerprint, so this
            // never changes cache keys or answers.)
            engine_config.workers = (hardware / workers).max(1);
        }
        let engine = match &config.cache_dir {
            Some(dir) => Engine::with_cache_dir(engine_config, dir)?,
            None => Engine::new(engine_config),
        };
        for warning in engine.load_warnings() {
            eprintln!("warning: {warning}");
        }
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Inner {
                engine,
                addr,
                workers,
                queue_capacity: config.queue_capacity.max(1),
                stop: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                started: Instant::now(),
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                solves: AtomicU64::new(0),
                solve_total_us: AtomicU64::new(0),
                solve_max_us: AtomicU64::new(0),
            },
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The engine serving this daemon (e.g. for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// admits work, answers. On return the queue is drained and the
    /// persistent caches are compacted.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures and the final compaction
    /// error, if any.
    pub fn run(self) -> io::Result<()> {
        let inner = &self.inner;
        let listener = &self.listener;
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..inner.workers {
                scope.spawn(|| worker_loop(inner));
            }
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) if inner.stop.load(Ordering::SeqCst) => {
                        let _ = e;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if inner.stop.load(Ordering::SeqCst) {
                    break; // the wake-up connection after `shutdown`
                }
                scope.spawn(move || {
                    if let Err(e) = handle_connection(inner, stream) {
                        // Client went away mid-conversation: routine.
                        let _ = e;
                    }
                });
            }
            inner.queue_cv.notify_all();
            Ok(())
        })?;
        self.inner.engine.compact_persistent()
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let item = {
            let mut queue = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(item) = queue.pop_front() {
                    break item;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return; // stop + empty queue: drained
                }
                // The timeout guards against a missed notification racing
                // the stop flag.
                queue = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned")
                    .0;
            }
        };
        let t0 = Instant::now();
        let served =
            inner
                .engine
                .map_with_deadline(&item.request.dfg, &item.request.cgra, item.deadline);
        let elapsed_us = t0.elapsed().as_micros() as u64;
        if !served.cached {
            inner.solves.fetch_add(1, Ordering::Relaxed);
            inner
                .solve_total_us
                .fetch_add(elapsed_us, Ordering::Relaxed);
            inner.solve_max_us.fetch_max(elapsed_us, Ordering::Relaxed);
        }
        let response = wire::map_response(
            item.request.id,
            &item.request.name,
            served.key,
            &served.outcome,
            served.cached,
            served.persistent,
            elapsed_us,
        );
        // A dead receiver means the client hung up; nothing to do.
        let _ = item.reply.send(response);
    }
}

fn stats_response(inner: &Inner) -> Json {
    let queue_depth = inner.queue.lock().expect("queue poisoned").len();
    let solves = inner.solves.load(Ordering::Relaxed);
    let total_us = inner.solve_total_us.load(Ordering::Relaxed);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "cache",
            wire::cache_stats_to_json(&inner.engine.cache_stats()),
        ),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_capacity", Json::Int(inner.queue_capacity as i64)),
        ("workers", Json::Int(inner.workers as i64)),
        (
            "requests",
            Json::Int(inner.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected",
            Json::Int(inner.rejected.load(Ordering::Relaxed) as i64),
        ),
        (
            "solves",
            Json::obj(vec![
                ("count", Json::Int(solves as i64)),
                ("total_us", Json::Int(total_us as i64)),
                (
                    "mean_us",
                    Json::Int(total_us.checked_div(solves).unwrap_or(0) as i64),
                ),
                (
                    "max_us",
                    Json::Int(inner.solve_max_us.load(Ordering::Relaxed) as i64),
                ),
            ]),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

fn health_response(inner: &Inner) -> Json {
    let queue_depth = inner.queue.lock().expect("queue poisoned").len();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("status", Json::Str("healthy".to_string())),
        ("queue_depth", Json::Int(queue_depth as i64)),
        (
            "persistent_cache",
            Json::Bool(inner.engine.cache_dir().is_some()),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

fn write_line(stream: &mut TcpStream, value: &Json) -> io::Result<()> {
    let mut line = value.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn handle_connection(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    // The read timeout lets the thread observe the stop flag even while a
    // client holds the connection open silently.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Raw bytes, not `read_line`: a read timeout may strike in the
        // middle of a multi-byte UTF-8 sequence, and per-call validation
        // would reject the split prefix. Validation happens once the
        // whole line is in hand.
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return Ok(()), // EOF: client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // `read_until` keeps already-read bytes in `line`; loop
                // and keep accumulating until the newline arrives.
                continue;
            }
            Err(e) => return Err(e),
        }
        if line.last() != Some(&b'\n') {
            // EOF in the middle of a line; treat like a close.
            return Ok(());
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            write_line(&mut writer, &wire::error_response(None, "invalid UTF-8"))?;
            line.clear();
            continue;
        };
        // Owned: the request may outlive `line`, which is reused.
        let trimmed = text.trim().to_string();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        inner.requests.fetch_add(1, Ordering::Relaxed);
        let response = match wire::parse_request(&trimmed) {
            Err(e) => wire::error_response(None, &e.to_string()),
            Ok(Request::Stats) => stats_response(inner),
            Ok(Request::Health) => health_response(inner),
            Ok(Request::Shutdown) => {
                inner.stop.store(true, Ordering::SeqCst);
                inner.queue_cv.notify_all();
                let ack = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("status", Json::Str("shutting_down".to_string())),
                ]);
                write_line(&mut writer, &ack)?;
                // Unblock the accept loop so `run` can wind down.
                let _ = TcpStream::connect(inner.addr);
                return Ok(());
            }
            Ok(Request::Map(request)) => {
                let deadline = request
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let id = request.id;
                let (tx, rx) = mpsc::channel();
                let admitted = {
                    let mut queue = inner.queue.lock().expect("queue poisoned");
                    if queue.len() >= inner.queue_capacity {
                        false
                    } else {
                        queue.push_back(WorkItem {
                            request: *request,
                            deadline,
                            reply: tx,
                        });
                        true
                    }
                };
                if admitted {
                    inner.queue_cv.notify_all();
                    match rx.recv() {
                        Ok(response) => response,
                        // Workers only drop a pending sender on shutdown.
                        Err(_) => wire::error_response(id, "server shutting down"),
                    }
                } else {
                    inner.rejected.fetch_add(1, Ordering::Relaxed);
                    wire::error_response(
                        id,
                        &format!("queue full ({} pending); retry later", inner.queue_capacity),
                    )
                }
            }
        };
        write_line(&mut writer, &response)?;
        line.clear();
    }
}
