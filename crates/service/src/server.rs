//! The mapping daemon: a TCP listener, a bounded admission queue, and a
//! worker pool driving the batch [`Engine`].
//!
//! Concurrency model, deliberately simple and fully `std`:
//!
//! * one thread per client connection reads request lines and writes
//!   response lines (requests on a single connection are answered in
//!   order; concurrency comes from multiple connections);
//! * `map` requests are **admitted** into a bounded queue — a full queue
//!   answers `queue full` immediately (backpressure) instead of
//!   buffering unboundedly;
//! * a fixed pool of worker threads pops the queue and solves through
//!   the shared [`Engine`], so cache hits and in-flight deduplication
//!   work across all clients;
//! * per-request `timeout_ms` becomes a wall-clock deadline at admission
//!   and is mapped onto the solver's `SolveLimits` through
//!   [`Engine::map_with_deadline`]; a deadline that is *already expired*
//!   at admission (`timeout_ms: 0`) is answered immediately instead of
//!   wasting a queue slot and a worker wakeup — with the cached result
//!   when one exists (matching the engine, which checks the cache before
//!   the clock), and a timeout response otherwise;
//! * `shutdown` drains the queue, compacts the persistent caches and
//!   stops the accept loop.
//!
//! ## Panic isolation
//!
//! A panicking solve must cost one request, not the daemon: each worker
//! wraps the per-item solve in `catch_unwind` and turns a panic into a
//! per-request `error` response, and every queue-lock acquisition
//! recovers from poisoning (the queue is a `VecDeque` of fully-owned
//! items — any interrupted mutation is a single push/pop, so the data is
//! coherent). Before this, one panicking worker poisoned `inner.queue`
//! and every later `.expect("queue poisoned")` — connection handlers and
//! workers alike — aborted, amplifying one bad request into a dead
//! daemon.

use crate::json::Json;
use crate::wire::{self, MapRequest, Request};
use satmapit_engine::{Engine, EngineConfig};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted requests. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with backpressure.
    pub queue_capacity: usize,
    /// The engine configuration every request is solved under (it is part
    /// of the cache key, so a daemon answers consistently for its
    /// lifetime). Leave `engine.workers` at 0 (the default) to let the
    /// server divide the hardware threads across its worker pool — each
    /// concurrent solve then gets an equal share instead of every solve
    /// claiming every core (quadratic oversubscription under load). A
    /// non-zero value is an explicit per-solve override.
    pub engine: EngineConfig,
    /// Directory for the persistent result/bound stores; `None` keeps the
    /// caches in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Fault injection for the panic-isolation regression tests: a worker
    /// panics instead of solving when a `map` request's name equals this
    /// value. Production configs leave it `None`; it exists because no
    /// well-formed request should be able to panic the engine, yet the
    /// daemon must survive one that somehow does.
    #[doc(hidden)]
    pub panic_on_name: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            engine: EngineConfig::default(),
            cache_dir: None,
            panic_on_name: None,
        }
    }
}

struct WorkItem {
    request: MapRequest,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Json>,
}

struct Inner {
    engine: Engine,
    addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    stop: AtomicBool,
    queue: Mutex<VecDeque<WorkItem>>,
    queue_cv: Condvar,
    started: Instant,
    requests: AtomicU64,
    rejected: AtomicU64,
    solves: AtomicU64,
    solve_total_us: AtomicU64,
    solve_max_us: AtomicU64,
    /// Solves that panicked and were answered with an `error` response
    /// instead of taking the daemon down.
    panics: AtomicU64,
    /// Requests answered with an immediate timeout at admission because
    /// their deadline had already expired (`timeout_ms: 0`).
    expired_at_admission: AtomicU64,
    /// Test-only fault injection (see [`ServerConfig::panic_on_name`]).
    panic_on_name: Option<String>,
}

/// Locks the admission queue, recovering from poisoning: the queue holds
/// fully-owned items and every mutation is a single push/pop, so a
/// panicking holder cannot leave it incoherent — and refusing to recover
/// turned one panic into a daemon-wide abort (each later
/// `.expect("queue poisoned")` re-panicked).
fn lock_queue<'a>(inner: &'a Inner) -> MutexGuard<'a, VecDeque<WorkItem>> {
    inner.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running mapping daemon.
pub struct Server {
    listener: TcpListener,
    inner: Inner,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7421`, port `0` for ephemeral) and
    /// opens the engine — loading persistent caches when
    /// [`ServerConfig::cache_dir`] is set. Load warnings are printed to
    /// stderr; they indicate skipped corrupt records, not fatal state.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the cache directory is
    /// unusable.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let workers = if config.workers > 0 {
            config.workers
        } else {
            hardware
        };
        let mut engine_config = config.engine.clone();
        if engine_config.workers == 0 {
            // Share the hardware: `workers` requests may solve at once, so
            // each race gets an equal slice of the thread budget. (The
            // worker count is not part of the result fingerprint, so this
            // never changes cache keys or answers.)
            engine_config.workers = (hardware / workers).max(1);
        }
        let engine = match &config.cache_dir {
            Some(dir) => Engine::with_cache_dir(engine_config, dir)?,
            None => Engine::new(engine_config),
        };
        for warning in engine.load_warnings() {
            eprintln!("warning: {warning}");
        }
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Inner {
                engine,
                addr,
                workers,
                queue_capacity: config.queue_capacity.max(1),
                stop: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                started: Instant::now(),
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                solves: AtomicU64::new(0),
                solve_total_us: AtomicU64::new(0),
                solve_max_us: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                expired_at_admission: AtomicU64::new(0),
                panic_on_name: config.panic_on_name,
            },
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The engine serving this daemon (e.g. for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// admits work, answers. On return the queue is drained and the
    /// persistent caches are compacted.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures and the final compaction
    /// error, if any.
    pub fn run(self) -> io::Result<()> {
        let inner = &self.inner;
        let listener = &self.listener;
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..inner.workers {
                scope.spawn(|| worker_loop(inner));
            }
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) if inner.stop.load(Ordering::SeqCst) => {
                        let _ = e;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if inner.stop.load(Ordering::SeqCst) {
                    break; // the wake-up connection after `shutdown`
                }
                scope.spawn(move || {
                    if let Err(e) = handle_connection(inner, stream) {
                        // Client went away mid-conversation: routine.
                        let _ = e;
                    }
                });
            }
            inner.queue_cv.notify_all();
            Ok(())
        })?;
        self.inner.engine.compact_persistent()
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let item = {
            let mut queue = lock_queue(inner);
            loop {
                if let Some(item) = queue.pop_front() {
                    break item;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return; // stop + empty queue: drained
                }
                // The timeout guards against a missed notification racing
                // the stop flag.
                queue = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let t0 = Instant::now();
        // Panic isolation: a solve that unwinds costs this request an
        // `error` response, never the daemon. `AssertUnwindSafe` is
        // justified because nothing from the broken call is reused — the
        // engine recovers its own locks (its in-flight guard runs on
        // unwind), and this worker immediately returns to the queue.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inner
                .panic_on_name
                .as_deref()
                .is_some_and(|name| name == item.request.name)
            {
                panic!("fault injection: request `{}`", item.request.name);
            }
            inner
                .engine
                .map_with_deadline(&item.request.dfg, &item.request.cgra, item.deadline)
        }));
        let elapsed_us = t0.elapsed().as_micros() as u64;
        let response = match solved {
            Ok(served) => {
                if !served.cached {
                    inner.solves.fetch_add(1, Ordering::Relaxed);
                    inner
                        .solve_total_us
                        .fetch_add(elapsed_us, Ordering::Relaxed);
                    inner.solve_max_us.fetch_max(elapsed_us, Ordering::Relaxed);
                }
                wire::map_response(
                    item.request.id,
                    &item.request.name,
                    served.key,
                    &served.outcome,
                    served.cached,
                    served.persistent,
                    elapsed_us,
                )
            }
            Err(panic) => {
                inner.panics.fetch_add(1, Ordering::Relaxed);
                let what = panic_message(panic.as_ref());
                eprintln!(
                    "warning: solve for `{}` panicked ({what}); answered with an error",
                    item.request.name
                );
                wire::error_response(
                    item.request.id,
                    &format!("internal error: solve panicked ({what})"),
                )
            }
        };
        // A dead receiver means the client hung up; nothing to do.
        let _ = item.reply.send(response);
    }
}

/// Best-effort text of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else is reported generically).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn stats_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    let solves = inner.solves.load(Ordering::Relaxed);
    let total_us = inner.solve_total_us.load(Ordering::Relaxed);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "cache",
            wire::cache_stats_to_json(&inner.engine.cache_stats()),
        ),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_capacity", Json::Int(inner.queue_capacity as i64)),
        ("workers", Json::Int(inner.workers as i64)),
        (
            "requests",
            Json::Int(inner.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected",
            Json::Int(inner.rejected.load(Ordering::Relaxed) as i64),
        ),
        (
            "panics",
            Json::Int(inner.panics.load(Ordering::Relaxed) as i64),
        ),
        (
            "expired_at_admission",
            Json::Int(inner.expired_at_admission.load(Ordering::Relaxed) as i64),
        ),
        (
            "solves",
            Json::obj(vec![
                ("count", Json::Int(solves as i64)),
                ("total_us", Json::Int(total_us as i64)),
                (
                    "mean_us",
                    Json::Int(total_us.checked_div(solves).unwrap_or(0) as i64),
                ),
                (
                    "max_us",
                    Json::Int(inner.solve_max_us.load(Ordering::Relaxed) as i64),
                ),
            ]),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

fn health_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("status", Json::Str("healthy".to_string())),
        ("queue_depth", Json::Int(queue_depth as i64)),
        (
            "persistent_cache",
            Json::Bool(inner.engine.cache_dir().is_some()),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

/// The response for a request whose deadline was already expired when it
/// arrived: the same shape an engine-produced timeout takes (`ok: true`,
/// `result.status = "failed"`, `kind = "timeout"`), with `at_ii = 0`
/// marking that no II was ever attempted. Timeouts are never cached, so
/// skipping the engine changes nothing an observer could distinguish —
/// except the latency.
fn expired_response(inner: &Inner, request: &MapRequest) -> Json {
    let key = satmapit_engine::fingerprint::fingerprint(
        &request.dfg,
        &request.cgra,
        inner.engine.config(),
    );
    let outcome = satmapit_engine::EngineOutcome {
        outcome: satmapit_core::MapOutcome {
            result: Err(satmapit_core::MapFailure::Timeout { at_ii: 0 }),
            attempts: Vec::new(),
            elapsed: Duration::ZERO,
        },
        stats: satmapit_engine::RaceStats::default(),
        proven_unmappable: false,
    };
    wire::map_response(request.id, &request.name, key, &outcome, false, false, 0)
}

fn write_line(stream: &mut TcpStream, value: &Json) -> io::Result<()> {
    let mut line = value.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn handle_connection(inner: &Inner, stream: TcpStream) -> io::Result<()> {
    // The read timeout lets the thread observe the stop flag even while a
    // client holds the connection open silently.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Raw bytes, not `read_line`: a read timeout may strike in the
        // middle of a multi-byte UTF-8 sequence, and per-call validation
        // would reject the split prefix. Validation happens once the
        // whole line is in hand.
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return Ok(()), // EOF: client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // `read_until` keeps already-read bytes in `line`; loop
                // and keep accumulating until the newline arrives.
                continue;
            }
            Err(e) => return Err(e),
        }
        if line.last() != Some(&b'\n') {
            // EOF in the middle of a line; treat like a close.
            return Ok(());
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            write_line(&mut writer, &wire::error_response(None, "invalid UTF-8"))?;
            line.clear();
            continue;
        };
        // Owned: the request may outlive `line`, which is reused.
        let trimmed = text.trim().to_string();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        inner.requests.fetch_add(1, Ordering::Relaxed);
        let response = match wire::parse_request(&trimmed) {
            Err(e) => wire::error_response(None, &e.to_string()),
            Ok(Request::Stats) => stats_response(inner),
            Ok(Request::Health) => health_response(inner),
            Ok(Request::Shutdown) => {
                inner.stop.store(true, Ordering::SeqCst);
                inner.queue_cv.notify_all();
                let ack = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("status", Json::Str("shutting_down".to_string())),
                ]);
                write_line(&mut writer, &ack)?;
                // Unblock the accept loop so `run` can wind down.
                let _ = TcpStream::connect(inner.addr);
                return Ok(());
            }
            Ok(Request::Map(request)) => {
                let deadline = request
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let id = request.id;
                // A deadline already expired at admission (`timeout_ms:
                // 0`, or a degenerate clock) can only ever produce a
                // timeout *for a cold problem* — answering it here saves
                // the queue slot, the worker wakeup, and the client's
                // wait behind real work. A cached answer is still served
                // (the engine's own deadline handling checks the cache
                // before the clock, and "answer only if you have it
                // already" is exactly what a zero budget requests).
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    inner.expired_at_admission.fetch_add(1, Ordering::Relaxed);
                    let response = match inner.engine.lookup_cached(&request.dfg, &request.cgra) {
                        Some(served) => wire::map_response(
                            id,
                            &request.name,
                            served.key,
                            &served.outcome,
                            served.cached,
                            served.persistent,
                            0,
                        ),
                        None => expired_response(inner, &request),
                    };
                    write_line(&mut writer, &response)?;
                    line.clear();
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                let admitted = {
                    let mut queue = lock_queue(inner);
                    if queue.len() >= inner.queue_capacity {
                        false
                    } else {
                        queue.push_back(WorkItem {
                            request: *request,
                            deadline,
                            reply: tx,
                        });
                        true
                    }
                };
                if admitted {
                    inner.queue_cv.notify_all();
                    match rx.recv() {
                        Ok(response) => response,
                        // Workers only drop a pending sender on shutdown.
                        Err(_) => wire::error_response(id, "server shutting down"),
                    }
                } else {
                    inner.rejected.fetch_add(1, Ordering::Relaxed);
                    wire::error_response(
                        id,
                        &format!("queue full ({} pending); retry later", inner.queue_capacity),
                    )
                }
            }
        };
        write_line(&mut writer, &response)?;
        line.clear();
    }
}
