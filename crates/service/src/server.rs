//! The mapping daemon: an epoll event loop, an earliest-deadline-first
//! admission queue, and a worker pool driving the batch [`Engine`].
//!
//! Concurrency model, deliberately simple and fully `std` (the
//! transport substrate lives in `satmapit-net`):
//!
//! * **one event-loop thread** owns every connection: it accepts
//!   non-blocking sockets, frames request lines out of per-connection
//!   read rings, answers control requests (`stats`, `health`, `trace`,
//!   `shutdown`) inline, and copies finished responses into write
//!   rings. Requests on a single connection are answered in order —
//!   pipelined `map` requests resolve out of order internally but
//!   their responses are sequenced per connection; concurrency comes
//!   from multiple connections;
//! * `map` requests are **admitted** into a bounded
//!   earliest-deadline-first queue — a full queue answers `queue full`
//!   immediately (backpressure) instead of buffering unboundedly, and
//!   a deadlined request whose remaining budget is provably below the
//!   observed p50 solve latency is **shed** at admission (once
//!   `SHED_MIN_SAMPLES` solves have been observed) rather than queued
//!   to time out;
//! * a fixed pool of worker threads pops the queue in deadline order
//!   and solves through the shared [`Engine`], so cache hits and
//!   in-flight deduplication work across all clients; finished
//!   responses return to the loop through a completion list plus an
//!   eventfd wake — the old daemon's `TcpStream::connect(self)`
//!   shutdown hack is gone;
//! * per-request `timeout_ms` becomes a wall-clock deadline at
//!   admission and is mapped onto the solver's `SolveLimits` through
//!   [`Engine::map_with_deadline`]; a deadline that is *already
//!   expired* at admission (`timeout_ms: 0`) is answered immediately
//!   instead of wasting a queue slot and a worker wakeup — with the
//!   cached result when one exists (matching the engine, which checks
//!   the cache before the clock), and a timeout response otherwise;
//! * a request line longer than [`ServerConfig::max_line_bytes`] is
//!   answered with an `error` and the connection is closed — a client
//!   streaming bytes without `\n` can no longer grow server memory
//!   without bound;
//! * `shutdown` stops admissions, drains the queue and in-flight
//!   solves, flushes pending responses, compacts the persistent caches
//!   and returns.
//!
//! ## Panic isolation
//!
//! A panicking solve must cost one request, not the daemon: each worker
//! wraps the per-item solve in `catch_unwind` and turns a panic into a
//! per-request `error` response, and every queue-lock acquisition
//! recovers from poisoning (the queue holds fully-owned items — any
//! interrupted mutation is a single push/pop, so the data is
//! coherent).

use crate::json::Json;
use crate::wire::{self, MapRequest, Request};
use satmapit_engine::{Engine, EngineConfig};
use satmapit_net::{Event, Interest, LineConn, LineError, Poller, Token, Waker};
use satmapit_obs as obs;
use satmapit_obs::Histogram;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Log target for daemon lifecycle and per-request warnings.
const LOG_TARGET: &str = "satmapit::service";

/// Solved-class samples required before the admission controller
/// trusts its latency estimate enough to shed. Below this, every
/// deadlined request is queued and allowed to try.
const SHED_MIN_SAMPLES: u64 = 8;

/// How long after the queue and in-flight work drain the loop keeps
/// trying to flush response bytes to clients that are not reading,
/// before shutdown proceeds without them.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_secs(5);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted requests. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with backpressure.
    pub queue_capacity: usize,
    /// The engine configuration every request is solved under (it is part
    /// of the cache key, so a daemon answers consistently for its
    /// lifetime). Leave `engine.workers` at 0 (the default) to let the
    /// server divide the hardware threads across its worker pool — each
    /// concurrent solve then gets an equal share instead of every solve
    /// claiming every core (quadratic oversubscription under load). A
    /// non-zero value is an explicit per-solve override.
    pub engine: EngineConfig,
    /// Directory for the persistent result/bound stores; `None` keeps the
    /// caches in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Directory the `trace` request writes Chrome trace-JSON files
    /// into. Setting it turns the flight recorder on for the daemon's
    /// lifetime (tracing is a process-wide observer switch — it never
    /// joins a cache key or changes an answer); `None` leaves tracing
    /// off and span recording at its zero-cost disabled path.
    pub trace_dir: Option<PathBuf>,
    /// Solves slower than this dump their per-II ladder trace through
    /// the structured logger at warn level, so one slow request can be
    /// diagnosed from the daemon's stderr alone. `None` disables.
    pub slow_solve: Option<Duration>,
    /// Upper bound on a single request line in bytes. A connection
    /// that exceeds it (e.g. a newline-free byte firehose) is answered
    /// with an `error` response and closed.
    pub max_line_bytes: usize,
    /// Fault injection for the panic-isolation regression tests: a worker
    /// panics instead of solving when a `map` request's name equals this
    /// value. Production configs leave it `None`; it exists because no
    /// well-formed request should be able to panic the engine, yet the
    /// daemon must survive one that somehow does.
    #[doc(hidden)]
    pub panic_on_name: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            engine: EngineConfig::default(),
            cache_dir: None,
            trace_dir: None,
            slow_solve: None,
            max_line_bytes: 4 * 1024 * 1024,
            panic_on_name: None,
        }
    }
}

/// An admitted `map` request waiting for (or holding) a worker.
struct WorkItem {
    request: MapRequest,
    deadline: Option<Instant>,
    /// When the request entered the queue — its wait until a worker
    /// pops it is reported as `queue_us`, separately from solve time.
    admitted: Instant,
    /// FIFO sequence, the tiebreak among equal (or absent) deadlines.
    seq: u64,
    /// Which connection the response routes back to.
    token: u64,
    /// Position in that connection's response order.
    slot: u64,
}

// Heap order: `BinaryHeap` pops the *greatest* item, so "greatest"
// means "most urgent" — earliest deadline first, deadlined work ahead
// of undeadlined work, FIFO among ties. Equality mirrors the same key
// so the Ord/Eq contract holds.
impl Ord for WorkItem {
    fn cmp(&self, other: &WorkItem) -> std::cmp::Ordering {
        match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        }
        .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &WorkItem) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &WorkItem) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorkItem {}

/// A finished solve travelling from a worker back to the event loop.
struct Completion {
    token: u64,
    slot: u64,
    response: Json,
}

/// Per-outcome solve-latency histograms (microseconds). One mutex per
/// class: recording locks only the class the finished request lands
/// in, for the duration of one bucket increment — far from any solver
/// hot path.
struct Latency {
    /// Answered by the in-memory result cache.
    memory_hit: Mutex<Histogram>,
    /// Answered by an entry loaded from the on-disk store.
    persistent_hit: Mutex<Histogram>,
    /// Solved to a definitive answer (mapped or deterministic failure).
    solved: Mutex<Histogram>,
    /// Solved to a wall-clock timeout (not memoized by the engine).
    timeout: Mutex<Histogram>,
    /// The solve panicked and was answered with an error response.
    error: Mutex<Histogram>,
    /// Admission-to-worker-pop wait, across all queued requests.
    queue_wait: Mutex<Histogram>,
}

impl Latency {
    fn new() -> Latency {
        Latency {
            memory_hit: Mutex::new(Histogram::new()),
            persistent_hit: Mutex::new(Histogram::new()),
            solved: Mutex::new(Histogram::new()),
            timeout: Mutex::new(Histogram::new()),
            error: Mutex::new(Histogram::new()),
            queue_wait: Mutex::new(Histogram::new()),
        }
    }
}

fn record_us(hist: &Mutex<Histogram>, us: u64) {
    hist.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(us);
}

fn histogram_json(hist: &Mutex<Histogram>) -> Json {
    snapshot_json(
        &hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot(),
    )
}

fn snapshot_json(snap: &obs::Snapshot) -> Json {
    Json::obj(vec![
        ("count", Json::Int(snap.count as i64)),
        ("total_us", Json::Int(snap.sum as i64)),
        ("min_us", Json::Int(snap.min as i64)),
        ("max_us", Json::Int(snap.max as i64)),
        ("p50_us", Json::Int(snap.p50 as i64)),
        ("p90_us", Json::Int(snap.p90 as i64)),
        ("p99_us", Json::Int(snap.p99 as i64)),
    ])
}

/// `<crate version>+g<git hash>`; the hash is resolved by `build.rs`
/// (`unknown` outside a git checkout, in which case it is omitted).
fn version_string() -> String {
    match env!("SATMAPIT_GIT_HASH") {
        "unknown" => env!("CARGO_PKG_VERSION").to_string(),
        hash => format!("{}+g{hash}", env!("CARGO_PKG_VERSION")),
    }
}

struct Inner {
    engine: Engine,
    addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    stop: AtomicBool,
    queue: Mutex<BinaryHeap<WorkItem>>,
    queue_cv: Condvar,
    /// Finished solves waiting for the event loop to sequence them into
    /// their connections; paired with an eventfd wake.
    completions: Mutex<Vec<Completion>>,
    started: Instant,
    requests: AtomicU64,
    rejected: AtomicU64,
    /// Deadlined requests refused at admission because the observed
    /// solve latency made their budget provably insufficient.
    shed: AtomicU64,
    /// Per-outcome solve latencies; the legacy `solves` stats block is
    /// derived from the `solved` + `timeout` classes.
    latency: Latency,
    /// Where `trace` requests write their Chrome trace files (`None`
    /// answers with event counts only).
    trace_dir: Option<PathBuf>,
    /// Sequence number for trace file names.
    trace_seq: AtomicU64,
    /// Slow-solve threshold (see [`ServerConfig::slow_solve`]).
    slow_solve: Option<Duration>,
    /// Solves that panicked and were answered with an `error` response
    /// instead of taking the daemon down.
    panics: AtomicU64,
    /// Requests answered with an immediate timeout at admission because
    /// their deadline had already expired (`timeout_ms: 0`).
    expired_at_admission: AtomicU64,
    /// Request-line cap (see [`ServerConfig::max_line_bytes`]).
    max_line_bytes: usize,
    /// Test-only fault injection (see [`ServerConfig::panic_on_name`]).
    panic_on_name: Option<String>,
}

/// Locks the admission queue, recovering from poisoning: the queue holds
/// fully-owned items and every mutation is a single push/pop, so a
/// panicking holder cannot leave it incoherent — and refusing to recover
/// turned one panic into a daemon-wide abort in an earlier life of this
/// daemon.
fn lock_queue<'a>(inner: &'a Inner) -> MutexGuard<'a, BinaryHeap<WorkItem>> {
    inner.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running mapping daemon.
pub struct Server {
    listener: TcpListener,
    inner: Inner,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7421`, port `0` for ephemeral) and
    /// opens the engine — loading persistent caches when
    /// [`ServerConfig::cache_dir`] is set. Load warnings are printed to
    /// stderr; they indicate skipped corrupt records, not fatal state.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the cache directory is
    /// unusable.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let workers = if config.workers > 0 {
            config.workers
        } else {
            hardware
        };
        let mut engine_config = config.engine.clone();
        if engine_config.workers == 0 {
            // Share the hardware: `workers` requests may solve at once, so
            // each race gets an equal slice of the thread budget. (The
            // worker count is not part of the result fingerprint, so this
            // never changes cache keys or answers.)
            engine_config.workers = (hardware / workers).max(1);
        }
        let engine = match &config.cache_dir {
            Some(dir) => Engine::with_cache_dir(engine_config, dir)?,
            None => Engine::new(engine_config),
        };
        for warning in engine.load_warnings() {
            obs::warn!(LOG_TARGET, "{warning}");
        }
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
            obs::trace::set_enabled(true);
            obs::info!(
                LOG_TARGET,
                "flight recorder on, traces in {}",
                dir.display()
            );
        }
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Inner {
                engine,
                addr,
                workers,
                queue_capacity: config.queue_capacity.max(1),
                stop: AtomicBool::new(false),
                queue: Mutex::new(BinaryHeap::new()),
                queue_cv: Condvar::new(),
                completions: Mutex::new(Vec::new()),
                started: Instant::now(),
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                latency: Latency::new(),
                trace_dir: config.trace_dir,
                trace_seq: AtomicU64::new(0),
                slow_solve: config.slow_solve,
                panics: AtomicU64::new(0),
                expired_at_admission: AtomicU64::new(0),
                max_line_bytes: config.max_line_bytes.max(1),
                panic_on_name: config.panic_on_name,
            },
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The engine serving this daemon (e.g. for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// admits work, answers. On return the queue is drained and the
    /// persistent caches are compacted.
    ///
    /// # Errors
    ///
    /// Propagates event-loop I/O failures and the final compaction
    /// error, if any.
    pub fn run(self) -> io::Result<()> {
        let inner = &self.inner;
        let waker = Waker::new()?;
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..inner.workers {
                let worker_waker = waker.clone();
                scope.spawn(move || worker_loop(inner, &worker_waker));
            }
            let result = event_loop(inner, &self.listener, &waker);
            // Whatever ended the loop — a shutdown request or an epoll
            // failure — the workers must still be released, or the
            // scope join blocks forever.
            // ordering: one-shot stop latch; workers poll it Relaxed
            // inside a 50ms wait_timeout loop, so SeqCst here is about
            // making the edge obvious, not about performance.
            inner.stop.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            result
        })?;
        // A final flight-recorder dump so spans recorded since the last
        // explicit `trace` drain survive the shutdown.
        if self.inner.trace_dir.is_some() {
            let events = obs::trace::drain();
            if !events.is_empty() {
                if let Err(e) = write_trace_file(&self.inner, &events) {
                    obs::warn!(LOG_TARGET, "failed to write shutdown trace: {e}");
                }
            }
        }
        self.inner.engine.compact_persistent()
    }
}

/// Token of the listening socket in the poller.
const LISTENER: Token = Token(0);
/// Token of the eventfd waker in the poller.
const WAKER: Token = Token(1);
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

/// One client connection owned by the event loop.
struct Conn {
    lc: LineConn,
    /// `(slot, response)` in request order; a `None` response is an
    /// in-flight solve. Responses are written out strictly from the
    /// front, so pipelined requests answer in the order they arrived
    /// no matter which worker finishes first.
    slots: VecDeque<(u64, Option<Json>)>,
    next_slot: u64,
    /// No more requests are read; the connection closes once its
    /// pending responses have flushed.
    closing: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn new(lc: LineConn) -> Conn {
        Conn {
            lc,
            slots: VecDeque::new(),
            next_slot: 0,
            closing: false,
            interest: Interest::READ,
        }
    }

    /// Reserves the next response position; `response` is `None` for
    /// requests that resolve later (admitted solves).
    fn push_slot(&mut self, response: Option<Json>) -> u64 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slots.push_back((slot, response));
        slot
    }

    /// Fills a previously reserved slot.
    fn resolve(&mut self, slot: u64, response: Json) {
        if let Some(entry) = self.slots.iter_mut().find(|(s, _)| *s == slot) {
            entry.1 = Some(response);
        }
    }

    /// Moves every leading ready response into the write ring.
    fn stage_ready(&mut self) {
        while matches!(self.slots.front(), Some((_, Some(_)))) {
            let (_, response) = self.slots.pop_front().expect("front checked");
            let mut line = response.expect("ready checked").to_string();
            line.push('\n');
            self.lc.queue(line.as_bytes());
        }
    }

    /// True when nothing is owed to this client anymore.
    fn drained(&self) -> bool {
        self.slots.is_empty() && !self.lc.wants_write()
    }
}

/// What the event loop decided to do with a connection after an event.
enum ConnFate {
    Keep,
    Drop,
}

/// The event loop: accepts, reads, admits, sequences and writes until
/// a `shutdown` request has been served and all owed work is done.
fn event_loop(inner: &Inner, listener: &TcpListener, waker: &Waker) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.add(listener, LISTENER, Interest::READ)?;
    poller.add(waker.as_fd(), WAKER, Interest::READ)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut in_flight: usize = 0;
    let mut next_seq: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        events.clear();
        // The timeout is a watchdog, not a schedule: every state change
        // arrives through the poller (sockets) or the waker
        // (completions), so a quiet daemon sleeps here.
        poller.wait(&mut events, Some(Duration::from_millis(100)))?;

        for event in &events {
            match event.token {
                LISTENER => accept_ready(inner, listener, &poller, &mut conns, &mut next_token)?,
                WAKER => waker.drain(),
                Token(token) => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let fate = if event.readable || event.hangup {
                        conn_readable(inner, conn, token, &mut in_flight, &mut next_seq)
                    } else {
                        ConnFate::Keep
                    };
                    if matches!(fate, ConnFate::Drop) {
                        let conn = conns.remove(&token).expect("present above");
                        let _ = poller.delete(conn.lc.stream());
                    }
                }
            }
        }

        // Route finished solves into their connections.
        let done = std::mem::take(
            &mut *inner
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for completion in done {
            in_flight -= 1;
            if let Some(conn) = conns.get_mut(&completion.token) {
                conn.resolve(completion.slot, completion.response);
            }
            // A vanished connection means the client hung up while its
            // solve ran; the answer is dropped, exactly as the old
            // daemon dropped sends to a dead reply channel.
        }

        // Stage + flush + interest upkeep, dropping finished conns.
        let stopping = stop_requested(inner);
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in &mut conns {
            if stopping {
                conn.closing = true;
            }
            conn.stage_ready();
            if conn.lc.wants_write() && conn.flush_or_fail().is_err() {
                dead.push(token);
                continue;
            }
            if (conn.closing || conn.lc.saw_eof()) && conn.drained() {
                dead.push(token);
                continue;
            }
            let wanted = if conn.lc.wants_write() {
                Interest::BOTH
            } else {
                Interest::READ
            };
            if wanted != conn.interest {
                conn.interest = wanted;
                if poller
                    .modify(conn.lc.stream(), Token(token), wanted)
                    .is_err()
                {
                    dead.push(token);
                }
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = poller.delete(conn.lc.stream());
            }
        }

        if stopping {
            let queue_empty = lock_queue(inner).is_empty();
            if queue_empty && in_flight == 0 {
                let owed: usize = conns.values().map(|c| c.lc.pending_out()).sum();
                if owed == 0 {
                    return Ok(());
                }
                // Give unread responses a bounded chance to flush to
                // slow readers, then leave without them.
                let deadline =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_FLUSH_GRACE);
                if Instant::now() >= deadline {
                    return Ok(());
                }
            }
        }
    }
}

/// Reads the one-shot stop latch.
fn stop_requested(inner: &Inner) -> bool {
    // ordering: the latch is set on this same thread (shutdown request)
    // or not at all; Relaxed self-visibility is guaranteed.
    inner.stop.load(Ordering::Relaxed)
}

/// Accepts every pending connection (level-triggered, so the backlog
/// drains in one pass).
fn accept_ready(
    inner: &Inner,
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop_requested(inner) {
                    // Late knockers during drain are turned away.
                    continue;
                }
                let Ok(lc) = LineConn::new(stream, inner.max_line_bytes) else {
                    continue;
                };
                let token = *next_token;
                *next_token += 1;
                if poller
                    .add(lc.stream(), Token(token), Interest::READ)
                    .is_ok()
                {
                    conns.insert(token, Conn::new(lc));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Handles a readable (or hung-up) connection: drains the socket,
/// frames lines, dispatches each request.
fn conn_readable(
    inner: &Inner,
    conn: &mut Conn,
    token: u64,
    in_flight: &mut usize,
    next_seq: &mut u64,
) -> ConnFate {
    let mut lines: Vec<Vec<u8>> = Vec::new();
    let read = conn.lc.read_lines(&mut lines);
    if conn.closing {
        // Drained purely to consume readiness; a draining connection
        // takes no further requests.
        return ConnFate::Keep;
    }
    for line in &lines {
        dispatch_line(inner, conn, token, line, in_flight, next_seq);
        if conn.closing {
            break;
        }
    }
    match read {
        Ok(_eof) => ConnFate::Keep,
        Err(LineError::TooLong { limit }) => {
            // The DoS cap: answer once, stop reading, close after the
            // flush.
            conn.push_slot(Some(wire::error_response(
                None,
                &format!("request line exceeds {limit} bytes"),
            )));
            conn.closing = true;
            ConnFate::Keep
        }
        Err(LineError::Io(_)) => ConnFate::Drop,
    }
}

/// Parses and answers one request line. Control requests resolve
/// immediately; admitted `map` requests reserve a response slot that a
/// worker completion fills later.
fn dispatch_line(
    inner: &Inner,
    conn: &mut Conn,
    token: u64,
    line: &[u8],
    in_flight: &mut usize,
    next_seq: &mut u64,
) {
    let Ok(text) = std::str::from_utf8(line) else {
        conn.push_slot(Some(wire::error_response(None, "invalid UTF-8")));
        return;
    };
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return;
    }
    // ordering: monotone telemetry counter.
    inner.requests.fetch_add(1, Ordering::Relaxed);
    match wire::parse_request(trimmed) {
        Err(e) => {
            conn.push_slot(Some(wire::error_response(None, &e.to_string())));
        }
        Ok(Request::Stats) => {
            let response = stats_response(inner);
            conn.push_slot(Some(response));
        }
        Ok(Request::Health) => {
            let response = health_response(inner);
            conn.push_slot(Some(response));
        }
        Ok(Request::Trace) => {
            let response = trace_response(inner);
            conn.push_slot(Some(response));
        }
        Ok(Request::Shutdown) => {
            // ordering: one-shot stop latch. The event loop (this
            // thread) acts on it synchronously; workers poll it
            // Relaxed under a 50ms wait_timeout, so visibility latency
            // is bounded by the poll. SeqCst keeps the shutdown edge
            // unambiguous — it is cold by definition.
            inner.stop.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            let ack = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("status", Json::Str("shutting_down".to_string())),
            ]);
            conn.push_slot(Some(ack));
            conn.closing = true;
        }
        Ok(Request::Map(request)) => {
            match admit_map(inner, *request, token, conn.next_slot, next_seq) {
                Admission::Immediate(response) => {
                    conn.push_slot(Some(response));
                }
                Admission::Queued => {
                    conn.push_slot(None);
                    *in_flight += 1;
                }
            }
        }
    }
}

/// Outcome of admitting a `map` request.
enum Admission {
    /// Answered on the spot (expired deadline, shed, or queue full).
    Immediate(Json),
    /// In the queue; a worker completion will fill the slot.
    Queued,
}

/// Admission control for `map`: expired deadlines answer immediately,
/// provably-hopeless deadlines are shed, a full queue rejects, and
/// everything else enters the EDF queue.
fn admit_map(
    inner: &Inner,
    request: MapRequest,
    token: u64,
    slot: u64,
    next_seq: &mut u64,
) -> Admission {
    let deadline = request
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let id = request.id;
    // A deadline already expired at admission (`timeout_ms: 0`, or a
    // degenerate clock) can only ever produce a timeout *for a cold
    // problem* — answering it here saves the queue slot, the worker
    // wakeup, and the client's wait behind real work. A cached answer
    // is still served (the engine's own deadline handling checks the
    // cache before the clock, and "answer only if you have it already"
    // is exactly what a zero budget requests).
    if deadline.is_some_and(|d| Instant::now() >= d) {
        // ordering: monotone telemetry counter.
        inner.expired_at_admission.fetch_add(1, Ordering::Relaxed);
        let response = match inner.engine.lookup_cached(&request.dfg, &request.cgra) {
            Some(served) => wire::map_response(
                id,
                &request.name,
                served.key,
                &served.outcome,
                served.cached,
                served.persistent,
                0,
                0,
            ),
            None => expired_response(inner, &request),
        };
        return Admission::Immediate(response);
    }
    // EDF shedding: once the solved-latency histogram has enough
    // samples to be trusted, a cold request whose remaining budget is
    // below the observed median solve time is refused now instead of
    // queued to fail later — the queue slot goes to a request that can
    // still make its deadline. Cached answers are never shed (they
    // cost microseconds regardless of budget).
    if let (Some(d), Some(estimate_us)) = (deadline, shed_estimate_us(inner)) {
        let remaining_us = d
            .saturating_duration_since(Instant::now())
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        if remaining_us < estimate_us && !inner.engine.peek_cached(&request.dfg, &request.cgra) {
            // ordering: monotone telemetry counter.
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Immediate(wire::error_response(
                id,
                &format!(
                    "shed: remaining budget {remaining_us}us is below the estimated solve time \
                     {estimate_us}us; retry with a larger timeout_ms"
                ),
            ));
        }
    }
    let mut queue = lock_queue(inner);
    if queue.len() >= inner.queue_capacity {
        drop(queue);
        // ordering: monotone telemetry counter.
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        return Admission::Immediate(wire::error_response(
            id,
            &format!("queue full ({} pending); retry later", inner.queue_capacity),
        ));
    }
    let seq = *next_seq;
    *next_seq += 1;
    queue.push(WorkItem {
        request,
        deadline,
        admitted: Instant::now(),
        seq,
        token,
        slot,
    });
    drop(queue);
    inner.queue_cv.notify_one();
    Admission::Queued
}

/// The admission controller's solve-time estimate: the median of the
/// `solved` class once it has [`SHED_MIN_SAMPLES`] samples, else
/// `None` (no shedding).
fn shed_estimate_us(inner: &Inner) -> Option<u64> {
    let solved = inner
        .latency
        .solved
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if solved.count() < SHED_MIN_SAMPLES {
        return None;
    }
    Some(solved.percentile(0.5))
}

impl Conn {
    /// Flushes the write ring, normalizing errors to a drop decision.
    fn flush_or_fail(&mut self) -> Result<(), ()> {
        match self.lc.flush() {
            Ok(()) => Ok(()),
            Err(_) => Err(()),
        }
    }
}

/// Writes `events` as Chrome trace JSON into the daemon's trace
/// directory, returning the path.
fn write_trace_file(inner: &Inner, events: &[obs::Event]) -> io::Result<PathBuf> {
    let dir = inner
        .trace_dir
        .as_ref()
        .expect("write_trace_file requires a trace dir");
    // ordering: unique-id ticket for trace filenames.
    let seq = inner.trace_seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("trace-{seq:04}.json"));
    std::fs::write(&path, obs::trace::export_chrome(events))?;
    Ok(path)
}

fn worker_loop(inner: &Inner, waker: &Waker) {
    loop {
        let item = {
            let mut queue = lock_queue(inner);
            loop {
                if let Some(item) = queue.pop() {
                    break item;
                }
                // ordering: polled inside a 50ms wait_timeout loop; a
                // stale read delays drain-and-exit by one poll, and the
                // queue itself is handed off through the mutex. Relaxed
                // is sufficient (downgraded from SeqCst in the audit).
                if inner.stop.load(Ordering::Relaxed) {
                    return; // stop + empty queue: drained
                }
                // The timeout guards against a missed notification racing
                // the stop flag.
                queue = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // Queue wait ends here; solve time starts here. Reporting the
        // two separately (`queue_us` vs `elapsed_us`) keeps a loaded
        // daemon's solve latencies honest — before the split, a fast
        // solve behind a deep queue was indistinguishable from a slow
        // solve.
        let queue_us = item.admitted.elapsed().as_micros() as u64;
        record_us(&inner.latency.queue_wait, queue_us);
        let mut span = obs::trace::enabled().then(|| {
            obs::trace::Span::begin(
                obs::trace::Category::Request,
                &format!("request {}", item.request.name),
            )
        });
        let t0 = Instant::now();
        // Panic isolation: a solve that unwinds costs this request an
        // `error` response, never the daemon. `AssertUnwindSafe` is
        // justified because nothing from the broken call is reused — the
        // engine recovers its own locks (its in-flight guard runs on
        // unwind), and this worker immediately returns to the queue.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inner
                .panic_on_name
                .as_deref()
                .is_some_and(|name| name == item.request.name)
            {
                panic!("fault injection: request `{}`", item.request.name);
            }
            inner
                .engine
                .map_with_deadline(&item.request.dfg, &item.request.cgra, item.deadline)
        }));
        let elapsed = t0.elapsed();
        let elapsed_us = elapsed.as_micros() as u64;
        let response = match solved {
            Ok(served) => {
                let timed_out = matches!(
                    served.outcome.outcome.result,
                    Err(satmapit_core::MapFailure::Timeout { .. })
                );
                let (class, hist) = if served.persistent {
                    ("persistent_hit", &inner.latency.persistent_hit)
                } else if served.cached {
                    ("memory_hit", &inner.latency.memory_hit)
                } else if timed_out {
                    ("timeout", &inner.latency.timeout)
                } else {
                    ("solved", &inner.latency.solved)
                };
                record_us(hist, elapsed_us);
                if let Some(span) = &mut span {
                    span.arg("queue_us", queue_us as i64);
                    span.arg_str("class", class);
                }
                if inner.slow_solve.is_some_and(|limit| elapsed >= limit) && !served.cached {
                    slow_solve_report(&item.request.name, elapsed, queue_us, &served.outcome);
                }
                wire::map_response(
                    item.request.id,
                    &item.request.name,
                    served.key,
                    &served.outcome,
                    served.cached,
                    served.persistent,
                    elapsed_us,
                    queue_us,
                )
            }
            Err(panic) => {
                // ordering: monotone telemetry counter.
                inner.panics.fetch_add(1, Ordering::Relaxed);
                record_us(&inner.latency.error, elapsed_us);
                if let Some(span) = &mut span {
                    span.arg("queue_us", queue_us as i64);
                    span.arg_str("class", "error");
                }
                let what = panic_message(panic.as_ref());
                obs::warn!(
                    LOG_TARGET,
                    "solve for `{}` panicked ({what}); answered with an error",
                    item.request.name
                );
                wire::error_response(
                    item.request.id,
                    &format!("internal error: solve panicked ({what})"),
                )
            }
        };
        drop(span);
        inner
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                token: item.token,
                slot: item.slot,
                response,
            });
        // A failed wake leaves the loop to its 100ms watchdog tick.
        let _ = waker.wake();
    }
}

/// Dumps a slow request's per-II ladder trace through the logger: one
/// warn line summarising the request, then the attempts that made it
/// slow, newest-first context a human can act on without a trace file.
fn slow_solve_report(
    name: &str,
    elapsed: Duration,
    queue_us: u64,
    outcome: &satmapit_engine::EngineOutcome,
) {
    let attempts = &outcome.outcome.attempts;
    let ladder: Vec<String> = attempts
        .iter()
        .map(|a| {
            format!(
                "ii={} {} {}us",
                a.ii,
                wire::attempt_outcome_name(&a.outcome),
                a.elapsed.as_micros()
            )
        })
        .collect();
    obs::warn!(
        LOG_TARGET,
        "slow solve `{name}`: {}us solving (+{queue_us}us queued), {} rungs [{}]",
        elapsed.as_micros(),
        attempts.len(),
        ladder.join(", ")
    );
}

/// Best-effort text of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else is reported generically).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn stats_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    // The legacy `solves` block covers everything a worker actually
    // solved (definitive answers and timeouts; panics excluded, as
    // before the histograms) — derived by merging the two classes so
    // its totals stay exact.
    let solves = {
        let mut merged = inner
            .latency
            .solved
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        merged.merge(
            &inner
                .latency
                .timeout
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        merged
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("version", Json::Str(version_string())),
        (
            "cache",
            wire::cache_stats_to_json(&inner.engine.cache_stats()),
        ),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_capacity", Json::Int(inner.queue_capacity as i64)),
        ("workers", Json::Int(inner.workers as i64)),
        (
            "requests",
            // ordering: this and the loads below read independent
            // monotone telemetry counters; the stats snapshot is
            // advisory and needs no cross-counter consistency.
            Json::Int(inner.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected",
            Json::Int(inner.rejected.load(Ordering::Relaxed) as i64),
        ),
        ("shed", Json::Int(inner.shed.load(Ordering::Relaxed) as i64)),
        (
            "panics",
            Json::Int(inner.panics.load(Ordering::Relaxed) as i64),
        ),
        (
            "expired_at_admission",
            Json::Int(inner.expired_at_admission.load(Ordering::Relaxed) as i64),
        ),
        (
            "solves",
            Json::obj(vec![
                ("count", Json::Int(solves.count() as i64)),
                ("total_us", Json::Int(solves.sum() as i64)),
                ("mean_us", Json::Int(solves.mean() as i64)),
                ("max_us", Json::Int(solves.max().unwrap_or(0) as i64)),
            ]),
        ),
        (
            "latency",
            Json::obj(vec![
                ("memory_hit", histogram_json(&inner.latency.memory_hit)),
                (
                    "persistent_hit",
                    histogram_json(&inner.latency.persistent_hit),
                ),
                ("solved", histogram_json(&inner.latency.solved)),
                ("timeout", histogram_json(&inner.latency.timeout)),
                ("error", histogram_json(&inner.latency.error)),
                ("queue_wait", histogram_json(&inner.latency.queue_wait)),
            ]),
        ),
        (
            "trace",
            Json::obj(vec![
                ("enabled", Json::Bool(obs::trace::enabled())),
                ("dropped", Json::Int(obs::trace::dropped() as i64)),
            ]),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

/// Drains the flight recorder. With a trace directory the events land
/// in a fresh Chrome trace file (the response carries its path); either
/// way the response reports how many events were collected and how many
/// the bounded rings dropped since startup.
fn trace_response(inner: &Inner) -> Json {
    if !obs::trace::enabled() {
        return wire::error_response(
            None,
            "tracing is disabled; start the daemon with --trace-dir",
        );
    }
    let events = obs::trace::drain();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("events", Json::Int(events.len() as i64)),
        ("dropped", Json::Int(obs::trace::dropped() as i64)),
    ];
    if inner.trace_dir.is_some() {
        match write_trace_file(inner, &events) {
            Ok(path) => pairs.push(("path", Json::Str(path.display().to_string()))),
            Err(e) => {
                return wire::error_response(None, &format!("failed to write trace file: {e}"))
            }
        }
    }
    Json::obj(pairs)
}

fn health_response(inner: &Inner) -> Json {
    let queue_depth = lock_queue(inner).len();
    // Degraded is not unhealthy: the daemon still answers every request
    // from memory, so `ok` stays true — but operators monitoring
    // `status` learn that nothing is reaching the disk anymore.
    let status = if inner.engine.degraded() {
        "degraded"
    } else {
        "healthy"
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("status", Json::Str(status.to_string())),
        ("version", Json::Str(version_string())),
        ("queue_depth", Json::Int(queue_depth as i64)),
        (
            "persistent_cache",
            Json::Bool(inner.engine.cache_dir().is_some()),
        ),
        (
            "uptime_us",
            Json::Int(inner.started.elapsed().as_micros() as i64),
        ),
    ])
}

/// The response for a request whose deadline was already expired when it
/// arrived: the same shape an engine-produced timeout takes (`ok: true`,
/// `result.status = "failed"`, `kind = "timeout"`), with `at_ii = 0`
/// marking that no II was ever attempted. Timeouts are never cached, so
/// skipping the engine changes nothing an observer could distinguish —
/// except the latency.
fn expired_response(inner: &Inner, request: &MapRequest) -> Json {
    let key = satmapit_engine::fingerprint::fingerprint(
        &request.dfg,
        &request.cgra,
        inner.engine.config(),
    );
    let outcome = satmapit_engine::EngineOutcome {
        outcome: satmapit_core::MapOutcome {
            result: Err(satmapit_core::MapFailure::Timeout { at_ii: 0 }),
            attempts: Vec::new(),
            elapsed: Duration::ZERO,
        },
        stats: satmapit_engine::RaceStats::default(),
        proven_unmappable: false,
    };
    wire::map_response(request.id, &request.name, key, &outcome, false, false, 0, 0)
}
