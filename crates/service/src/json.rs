//! A small, dependency-free JSON implementation for the wire protocol.
//!
//! The build environment is offline (the workspace's `serde` is a marker
//! stand-in), so the service speaks JSON through this module: a value
//! tree, a strict parser, and a deterministic writer. Design points:
//!
//! * **Integers are exact.** Numbers without fraction/exponent parse into
//!   `i64` (or `u64` via [`Json::as_u64`]) and print without a decimal
//!   point, so `i64` immediates and 64-bit counters round-trip bit-exactly
//!   — floats only appear when a document really contains them.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map),
//!   so encoding is deterministic and responses diff cleanly.
//! * **Strict parsing**: trailing garbage, unterminated strings, control
//!   characters in strings, and depth bombs are errors, not surprises.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part, kept exact.
    Int(i64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    let s = format!("{v}");
                    // `{}` on a whole f64 prints no ".0"; force one so the
                    // value re-parses as the Float it is.
                    if s.contains(['.', 'e', 'E']) {
                        out.push_str(&s);
                    } else {
                        out.push_str(&s);
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to single-line JSON (the wire format is line-delimited, so
/// no pretty printing); `to_string()` comes with it.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.depth += 1;
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.depth += 1;
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only
                // stopped at ASCII delimiters, so the slice is valid too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[self.pos - int_digits] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // Out-of-i64-range integers degrade to float rather than error
            // (JSON places no bound; we keep the closest representable).
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digit"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "9223372036854775807",
            "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn integers_stay_exact() {
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("a\n\t\"\\Aé😀".to_string()));
        // And the writer escapes back to parseable form.
        let round = parse(&v.to_string()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "01",
            "1.",
            "tru",
            "[1]x",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn depth_bomb_rejected() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn whole_floats_reparse_as_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.to_string(), "3.0");
        assert_eq!(parse("3.0").unwrap(), v);
    }
}
