//! The wire format: JSON encodings of DFGs, CGRAs, requests and
//! responses, shared by the server, the `satmapit submit` client and the
//! tests (which use [`outcome_signature`] to compare a daemon's answers
//! against a local [`Engine::map_batch`](satmapit_engine::Engine) run).
//!
//! Every request and response is one JSON object per line (`\n`
//! terminated). See `docs/service.md` for the full protocol reference;
//! round-trip fidelity over arbitrary inputs is pinned by proptests in
//! `tests/wire_roundtrip.rs`.

use crate::json::Json;
use satmapit_cgra::{Cgra, MemoryPolicy, Topology};
use satmapit_core::{AttemptOutcome, MapFailure};
use satmapit_dfg::{Dfg, Op};
use satmapit_engine::EngineOutcome;
use std::fmt;

/// A malformed wire document: what was wrong, in one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Op / enum names
// ---------------------------------------------------------------------------

/// The wire name of an operation (its canonical enum name).
pub fn op_name(op: Op) -> &'static str {
    match op {
        Op::Const => "Const",
        Op::Add => "Add",
        Op::Sub => "Sub",
        Op::Mul => "Mul",
        Op::Div => "Div",
        Op::Rem => "Rem",
        Op::And => "And",
        Op::Or => "Or",
        Op::Xor => "Xor",
        Op::Not => "Not",
        Op::Neg => "Neg",
        Op::Abs => "Abs",
        Op::Shl => "Shl",
        Op::Shr => "Shr",
        Op::Ror => "Ror",
        Op::Min => "Min",
        Op::Max => "Max",
        Op::Eq => "Eq",
        Op::Ne => "Ne",
        Op::Lt => "Lt",
        Op::Le => "Le",
        Op::Gt => "Gt",
        Op::Ge => "Ge",
        Op::Select => "Select",
        Op::Load => "Load",
        Op::Store => "Store",
        Op::Route => "Route",
    }
}

/// Parses an operation's wire name.
pub fn op_from_name(name: &str) -> Option<Op> {
    Some(match name {
        "Const" => Op::Const,
        "Add" => Op::Add,
        "Sub" => Op::Sub,
        "Mul" => Op::Mul,
        "Div" => Op::Div,
        "Rem" => Op::Rem,
        "And" => Op::And,
        "Or" => Op::Or,
        "Xor" => Op::Xor,
        "Not" => Op::Not,
        "Neg" => Op::Neg,
        "Abs" => Op::Abs,
        "Shl" => Op::Shl,
        "Shr" => Op::Shr,
        "Ror" => Op::Ror,
        "Min" => Op::Min,
        "Max" => Op::Max,
        "Eq" => Op::Eq,
        "Ne" => Op::Ne,
        "Lt" => Op::Lt,
        "Le" => Op::Le,
        "Gt" => Op::Gt,
        "Ge" => Op::Ge,
        "Select" => Op::Select,
        "Load" => Op::Load,
        "Store" => Op::Store,
        "Route" => Op::Route,
        _ => return None,
    })
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Mesh4 => "Mesh4",
        Topology::Mesh8 => "Mesh8",
        Topology::Torus4 => "Torus4",
    }
}

fn topology_from_name(name: &str) -> Option<Topology> {
    Some(match name {
        "Mesh4" => Topology::Mesh4,
        "Mesh8" => Topology::Mesh8,
        "Torus4" => Topology::Torus4,
        _ => return None,
    })
}

fn memory_policy_name(p: MemoryPolicy) -> &'static str {
    match p {
        MemoryPolicy::AllPes => "AllPes",
        MemoryPolicy::LeftColumn => "LeftColumn",
        MemoryPolicy::None => "None",
        MemoryPolicy::SplitLoadStore => "SplitLoadStore",
    }
}

fn memory_policy_from_name(name: &str) -> Option<MemoryPolicy> {
    Some(match name {
        "AllPes" => MemoryPolicy::AllPes,
        "LeftColumn" => MemoryPolicy::LeftColumn,
        "None" => MemoryPolicy::None,
        "SplitLoadStore" => MemoryPolicy::SplitLoadStore,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    value
        .get(key)
        .ok_or_else(|| WireError::new(format!("missing field `{key}`")))
}

fn u64_field(value: &Json, key: &str) -> Result<u64, WireError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("field `{key}` must be a non-negative integer")))
}

fn i64_field(value: &Json, key: &str) -> Result<i64, WireError> {
    field(value, key)?
        .as_i64()
        .ok_or_else(|| WireError::new(format!("field `{key}` must be an integer")))
}

fn str_field<'a>(value: &'a Json, key: &str) -> Result<&'a str, WireError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("field `{key}` must be a string")))
}

fn narrow<T: TryFrom<u64>>(v: u64, key: &str) -> Result<T, WireError> {
    T::try_from(v).map_err(|_| WireError::new(format!("field `{key}` out of range")))
}

// ---------------------------------------------------------------------------
// DFG / CGRA codecs
// ---------------------------------------------------------------------------

/// Encodes a DFG, preserving everything — name and labels included — so
/// decode reproduces a structurally *equal* graph.
pub fn dfg_to_json(dfg: &Dfg) -> Json {
    let nodes: Vec<Json> = dfg
        .node_ids()
        .map(|n| {
            let node = dfg.node(n);
            Json::obj(vec![
                ("op", Json::Str(op_name(node.op).to_string())),
                ("imm", Json::Int(node.imm)),
                ("label", Json::Str(node.label.clone())),
            ])
        })
        .collect();
    let edges: Vec<Json> = dfg
        .edges()
        .map(|(_, e)| {
            Json::obj(vec![
                ("src", Json::Int(i64::from(e.src.0))),
                ("dst", Json::Int(i64::from(e.dst.0))),
                ("operand", Json::Int(i64::from(e.operand))),
                ("distance", Json::Int(i64::from(e.distance))),
                ("init", Json::Int(e.init)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::Str(dfg.name().to_string())),
        ("nodes", Json::Arr(nodes)),
        ("edges", Json::Arr(edges)),
    ])
}

/// Decodes a DFG written by [`dfg_to_json`] (or hand-written in the same
/// shape). Edge endpoints are bounds-checked here — a malformed document
/// is an error, never a panic.
pub fn dfg_from_json(value: &Json) -> Result<Dfg, WireError> {
    let name = str_field(value, "name")?;
    let mut dfg = Dfg::new(name);
    let nodes = field(value, "nodes")?
        .as_arr()
        .ok_or_else(|| WireError::new("`nodes` must be an array"))?;
    for node in nodes {
        let op_str = str_field(node, "op")?;
        let op =
            op_from_name(op_str).ok_or_else(|| WireError::new(format!("unknown op `{op_str}`")))?;
        let imm = i64_field(node, "imm")?;
        let label = str_field(node, "label")?;
        dfg.add_node_labeled(op, imm, label);
    }
    let edges = field(value, "edges")?
        .as_arr()
        .ok_or_else(|| WireError::new("`edges` must be an array"))?;
    for edge in edges {
        let src = u64_field(edge, "src")?;
        let dst = u64_field(edge, "dst")?;
        if src >= nodes.len() as u64 || dst >= nodes.len() as u64 {
            return Err(WireError::new(format!(
                "edge {src}->{dst} references a node outside 0..{}",
                nodes.len()
            )));
        }
        let operand: u8 = narrow(u64_field(edge, "operand")?, "operand")?;
        let distance: u32 = narrow(u64_field(edge, "distance")?, "distance")?;
        let init = i64_field(edge, "init")?;
        // `add_back_edge` is the general constructor: it stores distance
        // and init verbatim (distance 0 = intra-iteration), which keeps
        // the decode structurally equal to the encoded graph.
        dfg.add_back_edge(
            satmapit_dfg::NodeId(src as u32),
            satmapit_dfg::NodeId(dst as u32),
            operand,
            distance,
            init,
        );
    }
    Ok(dfg)
}

/// Encodes a CGRA instance.
pub fn cgra_to_json(cgra: &Cgra) -> Json {
    Json::obj(vec![
        ("rows", Json::Int(i64::from(cgra.rows()))),
        ("cols", Json::Int(i64::from(cgra.cols()))),
        (
            "topology",
            Json::Str(topology_name(cgra.topology()).to_string()),
        ),
        ("regs_per_pe", Json::Int(i64::from(cgra.regs_per_pe()))),
        (
            "memory_policy",
            Json::Str(memory_policy_name(cgra.memory_policy()).to_string()),
        ),
    ])
}

/// Decodes a CGRA written by [`cgra_to_json`]. Missing `topology`,
/// `regs_per_pe` or `memory_policy` fall back to the paper's defaults.
pub fn cgra_from_json(value: &Json) -> Result<Cgra, WireError> {
    let rows: u16 = narrow(u64_field(value, "rows")?, "rows")?;
    let cols: u16 = narrow(u64_field(value, "cols")?, "cols")?;
    if rows == 0 || cols == 0 {
        return Err(WireError::new("CGRA dimensions must be positive"));
    }
    let mut cgra = Cgra::new(rows, cols);
    if let Some(t) = value.get("topology") {
        let name = t
            .as_str()
            .ok_or_else(|| WireError::new("`topology` must be a string"))?;
        cgra = cgra.with_topology(
            topology_from_name(name)
                .ok_or_else(|| WireError::new(format!("unknown topology `{name}`")))?,
        );
    }
    if let Some(r) = value.get("regs_per_pe") {
        let regs = r
            .as_u64()
            .ok_or_else(|| WireError::new("`regs_per_pe` must be a non-negative integer"))?;
        cgra = cgra.with_regs_per_pe(narrow(regs, "regs_per_pe")?);
    }
    if let Some(p) = value.get("memory_policy") {
        let name = p
            .as_str()
            .ok_or_else(|| WireError::new("`memory_policy` must be a string"))?;
        cgra = cgra.with_memory_policy(
            memory_policy_from_name(name)
                .ok_or_else(|| WireError::new(format!("unknown memory policy `{name}`")))?,
        );
    }
    Ok(cgra)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One mapping job as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<i64>,
    /// Display name for logs and human output.
    pub name: String,
    /// The loop body.
    pub dfg: Dfg,
    /// The target array.
    pub cgra: Cgra,
    /// Per-request wall-clock budget; the server turns it into a deadline
    /// the moment the request is admitted.
    pub timeout_ms: Option<u64>,
}

impl MapRequest {
    /// Encodes the request as one wire object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("op", Json::Str("map".to_string()))];
        if let Some(id) = self.id {
            pairs.push(("id", Json::Int(id)));
        }
        pairs.push(("name", Json::Str(self.name.clone())));
        pairs.push(("dfg", dfg_to_json(&self.dfg)));
        pairs.push(("cgra", cgra_to_json(&self.cgra)));
        if let Some(ms) = self.timeout_ms {
            pairs.push(("timeout_ms", Json::Int(ms as i64)));
        }
        Json::obj(pairs)
    }
}

/// Every request the daemon understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Map one DFG onto one CGRA.
    Map(Box<MapRequest>),
    /// Cache/queue/latency counters.
    Stats,
    /// Liveness probe.
    Health,
    /// Drain the flight recorder: collect every recorded span, write a
    /// Chrome trace file when the daemon has a trace directory, answer
    /// with the event count.
    Trace,
    /// Graceful shutdown: drain, compact caches, exit.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = crate::json::parse(line).map_err(|e| WireError::new(format!("bad JSON: {e}")))?;
    let op = str_field(&value, "op")?;
    match op {
        "map" => {
            let id = value.get("id").and_then(Json::as_i64);
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("unnamed")
                .to_string();
            let dfg = dfg_from_json(field(&value, "dfg")?)?;
            let cgra = cgra_from_json(field(&value, "cgra")?)?;
            let timeout_ms = match value.get("timeout_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::new("`timeout_ms` must be a non-negative integer")
                })?),
            };
            Ok(Request::Map(Box::new(MapRequest {
                id,
                name,
                dfg,
                cgra,
                timeout_ms,
            })))
        }
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "trace" => Ok(Request::Trace),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::new(format!("unknown op `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

pub(crate) fn attempt_outcome_name(outcome: &AttemptOutcome) -> String {
    match outcome {
        AttemptOutcome::Mapped => "mapped".to_string(),
        AttemptOutcome::Unsat => "unsat".to_string(),
        AttemptOutcome::RegAllocFailed(e) => format!("regalloc_failed({e})"),
        AttemptOutcome::SolverBudget(r) => format!("solver_budget({r:?})"),
    }
}

fn failure_kind(e: &MapFailure) -> &'static str {
    match e {
        MapFailure::InvalidDfg(_) => "invalid_dfg",
        MapFailure::Structural(_) => "structural",
        MapFailure::Timeout { .. } => "timeout",
        MapFailure::IiCapReached { .. } => "ii_cap_reached",
        MapFailure::InvalidIi { .. } => "invalid_ii",
        MapFailure::Internal(_) => "internal",
    }
}

/// The *deterministic* content of an outcome: result (full mapping and
/// register file, or the failure), MII, and the per-II attempt trace by
/// (II, outcome kind). Wall-clock fields (elapsed, solver effort, race
/// telemetry) are excluded — two runs of the same problem produce the
/// same signature, which is exactly what the loopback agreement tests
/// compare between a daemon and a local `Engine::map_batch`.
pub fn outcome_signature(outcome: &EngineOutcome) -> Json {
    let attempts: Vec<Json> = outcome
        .outcome
        .attempts
        .iter()
        .map(|a| {
            Json::obj(vec![
                ("ii", Json::Int(i64::from(a.ii))),
                ("outcome", Json::Str(attempt_outcome_name(&a.outcome))),
            ])
        })
        .collect();
    match &outcome.outcome.result {
        Ok(mapped) => {
            let placements: Vec<Json> = mapped
                .mapping
                .placements
                .iter()
                .map(|p| {
                    Json::Arr(vec![
                        Json::Int(i64::from(p.pe.0)),
                        Json::Int(i64::from(p.cycle)),
                        Json::Int(i64::from(p.fold)),
                    ])
                })
                .collect();
            let transfers: Vec<Json> = mapped
                .mapping
                .transfers
                .iter()
                .map(|t| {
                    Json::Str(match t {
                        satmapit_core::TransferKind::SamePeRegister => "reg".to_string(),
                        satmapit_core::TransferKind::NeighborOutput => "out".to_string(),
                    })
                })
                .collect();
            let registers: Vec<Json> = mapped
                .registers
                .per_pe()
                .iter()
                .map(|pe| {
                    Json::Arr(
                        pe.iter()
                            .map(|&(value, reg)| {
                                Json::Arr(vec![
                                    Json::Int(i64::from(value)),
                                    Json::Int(i64::from(reg)),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect();
            Json::obj(vec![
                ("status", Json::Str("mapped".to_string())),
                ("ii", Json::Int(i64::from(mapped.ii()))),
                ("mii", Json::Int(i64::from(mapped.mii))),
                (
                    "mapping",
                    Json::obj(vec![
                        ("ii", Json::Int(i64::from(mapped.mapping.ii))),
                        ("folds", Json::Int(i64::from(mapped.mapping.folds))),
                        ("placements", Json::Arr(placements)),
                        ("transfers", Json::Arr(transfers)),
                    ]),
                ),
                ("registers", Json::Arr(registers)),
                ("attempts", Json::Arr(attempts)),
            ])
        }
        Err(e) => Json::obj(vec![
            ("status", Json::Str("failed".to_string())),
            ("kind", Json::Str(failure_kind(e).to_string())),
            ("error", Json::Str(e.to_string())),
            ("proven_unmappable", Json::Bool(outcome.proven_unmappable)),
            ("attempts", Json::Arr(attempts)),
        ]),
    }
}

/// Builds the full `map` response line content. `elapsed_us` is solve
/// time only; `queue_us` is the time the request waited for a worker
/// (0 for answers that never queued: cache hits at admission, expired
/// deadlines).
#[allow(clippy::too_many_arguments)]
pub fn map_response(
    id: Option<i64>,
    name: &str,
    fingerprint: satmapit_engine::Fingerprint,
    outcome: &EngineOutcome,
    cached: bool,
    persistent: bool,
    elapsed_us: u64,
    queue_us: u64,
) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id", Json::Int(id)));
    }
    pairs.push(("ok", Json::Bool(true)));
    pairs.push(("name", Json::Str(name.to_string())));
    pairs.push(("fingerprint", Json::Str(fingerprint.to_string())));
    pairs.push(("cached", Json::Bool(cached)));
    pairs.push(("persistent", Json::Bool(persistent)));
    pairs.push(("elapsed_us", Json::Int(elapsed_us as i64)));
    pairs.push(("queue_us", Json::Int(queue_us as i64)));
    pairs.push(("result", outcome_signature(outcome)));
    Json::obj(pairs)
}

/// Builds an error response line content.
pub fn error_response(id: Option<i64>, message: &str) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id", Json::Int(id)));
    }
    pairs.push(("ok", Json::Bool(false)));
    pairs.push(("error", Json::Str(message.to_string())));
    Json::obj(pairs)
}

/// Encodes the engine's cache counters (shared by `stats` responses and
/// `satmapit batch --stats`).
pub fn cache_stats_to_json(stats: &satmapit_engine::CacheStats) -> Json {
    Json::obj(vec![
        ("entries", Json::Int(stats.entries as i64)),
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
        ("bound_entries", Json::Int(stats.bound_entries as i64)),
        (
            "persistent_entries",
            Json::Int(stats.persistent_entries as i64),
        ),
        ("persistent_hits", Json::Int(stats.persistent_hits as i64)),
        ("bound_starts", Json::Int(stats.bound_starts as i64)),
        ("gc_runs", Json::Int(stats.gc_runs as i64)),
        ("lits_reclaimed", Json::Int(stats.lits_reclaimed as i64)),
        ("arena_wasted", Json::Int(stats.arena_wasted as i64)),
        ("shared_exported", Json::Int(stats.shared_exported as i64)),
        ("shared_imported", Json::Int(stats.shared_imported as i64)),
        ("shared_dropped", Json::Int(stats.shared_dropped as i64)),
        ("sat_wins", Json::Int(stats.sat_wins as i64)),
        ("morph_wins", Json::Int(stats.morph_wins as i64)),
        ("bound_exchanges", Json::Int(stats.bound_exchanges as i64)),
        ("evicted_size", Json::Int(stats.evicted_size as i64)),
        ("evicted_age", Json::Int(stats.evicted_age as i64)),
        ("compactions", Json::Int(stats.compactions as i64)),
        ("append_errors", Json::Int(stats.append_errors as i64)),
        ("fsyncs", Json::Int(stats.fsyncs as i64)),
        ("degraded", Json::Bool(stats.degraded)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_dfg() -> Dfg {
        // acc = acc + 7 — exercises a loop-carried edge with a live-in.
        let mut dfg = Dfg::new("sample");
        let a = dfg.add_const(7);
        let acc = dfg.add_node(Op::Add);
        dfg.add_edge(a, acc, 0);
        dfg.add_back_edge(acc, acc, 1, 1, -3);
        dfg
    }

    #[test]
    fn dfg_round_trips_through_json_text() {
        let dfg = sample_dfg();
        let text = dfg_to_json(&dfg).to_string();
        let decoded = dfg_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, dfg);
    }

    #[test]
    fn cgra_round_trips() {
        let cgra = Cgra::new(2, 5)
            .with_topology(Topology::Torus4)
            .with_regs_per_pe(7)
            .with_memory_policy(MemoryPolicy::SplitLoadStore);
        let text = cgra_to_json(&cgra).to_string();
        assert_eq!(cgra_from_json(&parse(&text).unwrap()).unwrap(), cgra);
    }

    #[test]
    fn cgra_defaults_apply_when_fields_missing() {
        let cgra = cgra_from_json(&parse(r#"{"rows":3,"cols":3}"#).unwrap()).unwrap();
        assert_eq!(cgra, Cgra::square(3));
    }

    #[test]
    fn request_round_trips() {
        let request = MapRequest {
            id: Some(42),
            name: "sample@2x2".to_string(),
            dfg: sample_dfg(),
            cgra: Cgra::square(2),
            timeout_ms: Some(5000),
        };
        let line = request.to_json().to_string();
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Map(Box::new(request))
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
        assert_eq!(parse_request(r#"{"op":"trace"}"#).unwrap(), Request::Trace);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_errors() {
        for bad in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"map"}"#,
            r#"{"op":"map","dfg":{"name":"x","nodes":[],"edges":[]},"cgra":{"rows":0,"cols":1}}"#,
            // Edge pointing outside the node list must not panic.
            r#"{"op":"map","dfg":{"name":"x","nodes":[{"op":"Const","imm":0,"label":"c"}],"edges":[{"src":0,"dst":9,"operand":0,"distance":0,"init":0}]},"cgra":{"rows":1,"cols":1}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn signature_excludes_wall_clock_but_keeps_the_mapping() {
        let dfg = sample_dfg();
        let cgra = Cgra::square(2);
        let config = satmapit_engine::EngineConfig::default();
        let a = satmapit_engine::map_raced(&dfg, &cgra, &config);
        let b = satmapit_engine::map_raced(&dfg, &cgra, &config);
        assert_eq!(outcome_signature(&a), outcome_signature(&b));
        let sig = outcome_signature(&a);
        assert_eq!(sig.get("status").and_then(Json::as_str), Some("mapped"));
        assert!(sig.get("mapping").is_some());
    }
}
