//! Resolves the git commit hash at build time so `health`/`stats`
//! responses can report exactly which build is serving. Outside a git
//! checkout (or without a `git` binary) the hash is `unknown` — the
//! daemon must build anywhere, so this is best-effort by design.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=SATMAPIT_GIT_HASH={hash}");
    // Rebuild when HEAD moves; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
