//! # satmapit-bench
//!
//! Experiment harness for the SAT-MapIt reproduction: runs the paper's
//! evaluation grid (11 benchmarks × mesh sizes 2×2…5×5 × three mappers)
//! and renders Figure 6, Tables I–IV and the §V summary statistics.
//!
//! The `repro` binary drives it:
//!
//! ```sh
//! cargo run --release -p satmapit-bench --bin repro -- all --timeout 60
//! ```
//!
//! Criterion benches in `benches/` cover per-cell mapping throughput and
//! the encoding/solver ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use satmapit_baselines::{BaselineConfig, BaselineFailure, PathSeekerMapper, RampMapper};
use satmapit_cgra::Cgra;
use satmapit_core::{MapFailure, Mapper, MapperConfig};
use satmapit_kernels::Kernel;
use satmapit_obs as obs;
use serde::{Deserialize, Serialize};
use std::time::Duration;

pub mod report;

/// Which mapper produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapperKind {
    /// The SAT-based mapper (this paper).
    SatMapIt,
    /// RAMP-like heuristic baseline.
    Ramp,
    /// PathSeeker-like heuristic baseline.
    PathSeeker,
}

impl MapperKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MapperKind::SatMapIt => "SAT-MapIt",
            MapperKind::Ramp => "RAMP-like",
            MapperKind::PathSeeker => "PathSeeker-like",
        }
    }
}

/// Outcome of one (kernel, size, mapper) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellResult {
    /// Mapped at the given II.
    Mapped {
        /// Achieved initiation interval.
        ii: u32,
        /// Routing nodes the mapper inserted (baselines only).
        routes: u32,
    },
    /// Wall-clock budget expired — the paper's red ✕.
    Timeout,
    /// II climbed past the cap — the paper's black ✕.
    IiCap,
}

impl CellResult {
    /// The achieved II, if mapped.
    pub fn ii(self) -> Option<u32> {
        match self {
            CellResult::Mapped { ii, .. } => Some(ii),
            _ => None,
        }
    }
}

/// One measured grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Benchmark name.
    pub kernel: String,
    /// Mesh edge length (2..=5 in the paper).
    pub size: u16,
    /// Which mapper.
    pub mapper: MapperKind,
    /// Outcome.
    pub result: CellResult,
    /// Wall-clock seconds spent mapping.
    pub seconds: f64,
}

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Mesh sizes to sweep (paper: 2..=5).
    pub sizes: Vec<u16>,
    /// Per-cell wall-clock budget (paper: 4000 s; scaled down by default).
    pub timeout: Duration,
    /// II cap (paper: 50).
    pub max_ii: u32,
    /// Benchmark subset (defaults to all 11).
    pub kernels: Vec<String>,
    /// Baseline random seed.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            sizes: vec![2, 3, 4, 5],
            timeout: Duration::from_secs(60),
            max_ii: 50,
            kernels: satmapit_kernels::NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            seed: 0xBA5E11E5,
        }
    }
}

/// Runs one cell.
///
/// # Panics
///
/// Panics if the kernel is malformed (cannot happen for the built-in
/// suite).
pub fn run_cell(kernel: &Kernel, cgra: &Cgra, mapper: MapperKind, config: &GridConfig) -> Cell {
    let size = cgra.rows();
    let (result, seconds) = match mapper {
        MapperKind::SatMapIt => {
            let mc = MapperConfig {
                max_ii: config.max_ii,
                timeout: Some(config.timeout),
                ..MapperConfig::default()
            };
            let outcome = Mapper::new(&kernel.dfg, cgra).with_config(mc).run();
            let result = match outcome.result {
                Ok(m) => CellResult::Mapped {
                    ii: m.ii(),
                    routes: 0,
                },
                Err(MapFailure::Timeout { .. }) => CellResult::Timeout,
                Err(MapFailure::IiCapReached { .. }) => CellResult::IiCap,
                Err(e) => panic!("unexpected failure for {}: {e}", kernel.name()),
            };
            (result, outcome.elapsed.as_secs_f64())
        }
        MapperKind::Ramp | MapperKind::PathSeeker => {
            let bc = BaselineConfig {
                max_ii: config.max_ii,
                timeout: Some(config.timeout),
                seed: config.seed,
                ..BaselineConfig::default()
            };
            let outcome = if mapper == MapperKind::Ramp {
                RampMapper::new(&kernel.dfg, cgra).with_config(bc).run()
            } else {
                PathSeekerMapper::new(&kernel.dfg, cgra)
                    .with_config(bc)
                    .run()
            };
            let result = match outcome.result {
                Ok(m) => CellResult::Mapped {
                    ii: m.ii(),
                    routes: m.routes,
                },
                Err(BaselineFailure::Timeout { .. }) => CellResult::Timeout,
                Err(BaselineFailure::IiCapReached { .. }) => CellResult::IiCap,
                Err(e) => panic!("unexpected failure for {}: {e}", kernel.name()),
            };
            (result, outcome.elapsed.as_secs_f64())
        }
    };
    Cell {
        kernel: kernel.name().to_string(),
        size,
        mapper,
        result,
        seconds,
    }
}

/// Runs the whole grid (all kernels × sizes × three mappers), printing
/// progress to stderr.
pub fn run_grid(config: &GridConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for name in &config.kernels {
        let kernel =
            satmapit_kernels::by_name(name).unwrap_or_else(|| panic!("unknown kernel `{name}`"));
        for &size in &config.sizes {
            let cgra = Cgra::square(size);
            for mapper in [
                MapperKind::SatMapIt,
                MapperKind::Ramp,
                MapperKind::PathSeeker,
            ] {
                obs::info!(
                    "satmapit::bench",
                    "[grid] {name} {size}x{size} {}...",
                    mapper.name()
                );
                cells.push(run_cell(&kernel, &cgra, mapper, config));
            }
        }
    }
    cells
}

/// The best heuristic result per (kernel, size), mirroring the paper's
/// "best of RAMP/PathSeeker" presentation in Fig. 6. Mapped cells beat
/// failures; ties break on time.
pub fn best_baseline(cells: &[Cell], kernel: &str, size: u16) -> Option<Cell> {
    cells
        .iter()
        .filter(|c| {
            c.kernel == kernel
                && c.size == size
                && matches!(c.mapper, MapperKind::Ramp | MapperKind::PathSeeker)
        })
        .min_by(|a, b| {
            let key = |c: &Cell| c.result.ii().unwrap_or(u32::MAX);
            key(a).cmp(&key(b)).then(
                a.seconds
                    .partial_cmp(&b.seconds)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
        .cloned()
}

/// Finds the cell for a given coordinate.
pub fn cell_of(cells: &[Cell], kernel: &str, size: u16, mapper: MapperKind) -> Option<Cell> {
    cells
        .iter()
        .find(|c| c.kernel == kernel && c.size == size && c.mapper == mapper)
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> GridConfig {
        GridConfig {
            sizes: vec![3],
            timeout: Duration::from_secs(30),
            max_ii: 20,
            kernels: vec!["srand".into(), "basicmath".into()],
            seed: 1,
        }
    }

    #[test]
    fn grid_runs_and_sat_maps() {
        let config = quick_config();
        let cells = run_grid(&config);
        assert_eq!(cells.len(), 2 * 3);
        for c in &cells {
            if c.mapper == MapperKind::SatMapIt {
                assert!(c.result.ii().is_some(), "{} should map", c.kernel);
            }
        }
        let best = best_baseline(&cells, "srand", 3);
        assert!(best.is_some());
    }

    #[test]
    fn cell_lookup_roundtrips() {
        let config = quick_config();
        let cells = run_grid(&config);
        let c = cell_of(&cells, "basicmath", 3, MapperKind::SatMapIt).unwrap();
        assert_eq!(c.kernel, "basicmath");
        assert_eq!(c.size, 3);
    }
}
