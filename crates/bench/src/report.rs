//! Rendering of the paper's figures and tables from measured grid cells.

use crate::{best_baseline, cell_of, Cell, CellResult, MapperKind};
use std::fmt::Write as _;

/// Renders Figure 6: per mesh size, the II achieved by SAT-MapIt vs the
/// best of the heuristic baselines, with ✕ marks for failures
/// (`✕T` = timeout / red, `✕C` = II cap / black).
pub fn figure6(cells: &[Cell], sizes: &[u16], kernels: &[String]) -> String {
    let mut out = String::new();
    for &size in sizes {
        let _ = writeln!(out, "── Figure 6 panel: {size}x{size} CGRA ──");
        let _ = writeln!(
            out,
            " {:<13} | {:>11} | {:>9} | Δ",
            "benchmark", "SoA(best)", "SAT-MapIt"
        );
        let _ = writeln!(out, " {:-<13}-+-{:-<11}-+-{:-<9}-+----", "", "", "");
        for kernel in kernels {
            let soa = best_baseline(cells, kernel, size);
            let sat = cell_of(cells, kernel, size, MapperKind::SatMapIt);
            let fmt = |c: &Option<Cell>| match c.as_ref().map(|c| c.result) {
                Some(CellResult::Mapped { ii, routes }) => {
                    if routes > 0 {
                        format!("{ii} (+{routes}r)")
                    } else {
                        format!("{ii}")
                    }
                }
                Some(CellResult::Timeout) => "✕T".to_string(),
                Some(CellResult::IiCap) => "✕C".to_string(),
                None => "?".to_string(),
            };
            let delta = match (
                soa.as_ref().and_then(|c| c.result.ii()),
                sat.as_ref().and_then(|c| c.result.ii()),
            ) {
                (Some(a), Some(b)) if b < a => format!("SAT -{}", a - b),
                (Some(a), Some(b)) if b > a => format!("SoA -{}", b - a),
                (Some(_), Some(_)) => "tie".to_string(),
                (None, Some(_)) => "SAT only".to_string(),
                (Some(_), None) => "SoA only".to_string(),
                (None, None) => "both ✕".to_string(),
            };
            let _ = writeln!(
                out,
                " {:<13} | {:>11} | {:>9} | {delta}",
                kernel,
                fmt(&soa),
                fmt(&sat)
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders one of Tables I–IV: mapping time in seconds for the given mesh
/// size (paper numbering: Table I = 2x2 … Table IV = 5x5).
pub fn table(cells: &[Cell], size: u16, kernels: &[String]) -> String {
    let mut out = String::new();
    let number = match size {
        2 => "I",
        3 => "II",
        4 => "III",
        5 => "IV",
        _ => "?",
    };
    let _ = writeln!(
        out,
        "── Table {number}: mapping time (seconds) on a {size}x{size} CGRA ──"
    );
    let _ = writeln!(
        out,
        " {:<13} | {:>12} | {:>12} | {:>8}",
        "benchmark", "SoA(best)", "SAT-MapIt", "Δ"
    );
    let _ = writeln!(out, " {:-<13}-+-{:-<12}-+-{:-<12}-+-{:-<8}", "", "", "", "");
    for kernel in kernels {
        let soa = best_baseline(cells, kernel, size);
        let sat = cell_of(cells, kernel, size, MapperKind::SatMapIt);
        let secs = |c: &Option<Cell>| c.as_ref().map(|c| c.seconds);
        let cell_fmt = |c: &Option<Cell>| match c.as_ref() {
            Some(c) => format!("{:.2}", c.seconds),
            None => "?".to_string(),
        };
        let delta = match (secs(&soa), secs(&sat)) {
            (Some(a), Some(b)) => format!("{:+.2}", b - a),
            _ => "?".to_string(),
        };
        let _ = writeln!(
            out,
            " {:<13} | {:>12} | {:>12} | {:>8}",
            kernel,
            cell_fmt(&soa),
            cell_fmt(&sat),
            delta
        );
    }
    let _ = writeln!(out);
    out
}

/// Summary statistics in the style of §V: in how many cells SAT-MapIt is
/// strictly better (lower II, or mapped where the SoA failed), plus the
/// "faster when it matters" timing split.
pub fn summary(cells: &[Cell], sizes: &[u16], kernels: &[String]) -> String {
    let mut better = 0usize;
    let mut tie = 0usize;
    let mut worse = 0usize;
    let mut total = 0usize;
    let mut sat_slower: Vec<f64> = Vec::new();
    let mut sat_faster: Vec<f64> = Vec::new();

    for &size in sizes {
        for kernel in kernels {
            let soa = best_baseline(cells, kernel, size);
            let sat = cell_of(cells, kernel, size, MapperKind::SatMapIt);
            let (Some(soa), Some(sat)) = (soa, sat) else {
                continue;
            };
            total += 1;
            match (soa.result.ii(), sat.result.ii()) {
                (Some(a), Some(b)) if b < a => better += 1,
                (None, Some(_)) => better += 1,
                (Some(a), Some(b)) if b > a => worse += 1,
                (Some(_), None) => worse += 1,
                (None, None) => tie += 1,
                _ => tie += 1,
            }
            let d = sat.seconds - soa.seconds;
            if d > 0.0 {
                sat_slower.push(d);
            } else {
                sat_faster.push(-d);
            }
        }
    }

    let stats = |v: &[f64]| {
        if v.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
            (mean, var.sqrt())
        }
    };
    let (slow_mean, slow_sd) = stats(&sat_slower);
    let (fast_mean, fast_sd) = stats(&sat_faster);

    let mut out = String::new();
    let _ = writeln!(out, "── Summary (cf. §V) ──");
    let _ = writeln!(
        out,
        " SAT-MapIt strictly better II (or mapped where SoA failed): {better}/{total} = {:.2}%",
        100.0 * better as f64 / total.max(1) as f64
    );
    let _ = writeln!(out, " ties: {tie}/{total}, worse: {worse}/{total}");
    let _ = writeln!(
        out,
        " cells where SAT-MapIt is slower: {} (mean +{:.2}s, sd {:.2})",
        sat_slower.len(),
        slow_mean,
        slow_sd
    );
    let _ = writeln!(
        out,
        " cells where SAT-MapIt is faster: {} (mean -{:.2}s, sd {:.2})",
        sat_faster.len(),
        fast_mean,
        fast_sd
    );
    let _ = writeln!(
        out,
        " paper reference: better in 47.72% of 44 cells; slower cells avg +15.28s (sd 34.97); faster cells avg -962.24s (sd 1438.78)"
    );
    out
}

/// Serializes the cells as a simple CSV for archival.
pub fn to_csv(cells: &[Cell]) -> String {
    let mut out = String::from("kernel,size,mapper,status,ii,routes,seconds\n");
    for c in cells {
        let (status, ii, routes) = match c.result {
            CellResult::Mapped { ii, routes } => ("mapped", ii.to_string(), routes),
            CellResult::Timeout => ("timeout", String::new(), 0),
            CellResult::IiCap => ("iicap", String::new(), 0),
        };
        let _ = writeln!(
            out,
            "{},{},{},{status},{ii},{routes},{:.3}",
            c.kernel,
            c.size,
            c.mapper.name(),
            c.seconds
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<Cell> {
        vec![
            Cell {
                kernel: "k".into(),
                size: 2,
                mapper: MapperKind::SatMapIt,
                result: CellResult::Mapped { ii: 3, routes: 0 },
                seconds: 1.0,
            },
            Cell {
                kernel: "k".into(),
                size: 2,
                mapper: MapperKind::Ramp,
                result: CellResult::Mapped { ii: 4, routes: 1 },
                seconds: 0.5,
            },
            Cell {
                kernel: "k".into(),
                size: 2,
                mapper: MapperKind::PathSeeker,
                result: CellResult::IiCap,
                seconds: 2.0,
            },
        ]
    }

    #[test]
    fn figure6_marks_and_deltas() {
        let cells = sample_cells();
        let fig = figure6(&cells, &[2], &["k".to_string()]);
        assert!(fig.contains("SAT -1"), "{fig}");
        assert!(fig.contains("(+1r)"), "{fig}");
    }

    #[test]
    fn table_renders_seconds() {
        let cells = sample_cells();
        let t = table(&cells, 2, &["k".to_string()]);
        assert!(t.contains("Table I"));
        assert!(t.contains("0.50"));
        assert!(t.contains("1.00"));
    }

    #[test]
    fn summary_counts_better() {
        let cells = sample_cells();
        let s = summary(&cells, &[2], &["k".to_string()]);
        assert!(s.contains("1/1 = 100.00%"), "{s}");
    }

    #[test]
    fn csv_has_all_rows() {
        let cells = sample_cells();
        let csv = to_csv(&cells);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("timeout") || csv.contains("iicap"));
    }
}
