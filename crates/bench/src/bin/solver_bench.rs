//! The SAT-core ablation bench: incremental vs scratch II ladders, arena
//! GC on/off, rung-aware phase transfer on/off, a SAT-vs-morph backend
//! head-to-head on every grid (`ladder_latency_us.<grid>.<backend>`),
//! and the arena-waste measurement after a full multi-rung ladder —
//! emitted as machine-readable JSON (`BENCH_solver.json`) so CI and the
//! bench trajectory can track the solver hot path across PRs.
//!
//! ```sh
//! cargo run --release -p satmapit-bench --bin solver_bench -- [--reps N] [--out PATH]
//! ```
//!
//! Wall-clock numbers are the minimum over `--reps` repetitions (minimum,
//! not mean: scheduling noise only ever adds time). Run on an idle
//! machine in `--release`.

#![forbid(unsafe_code)]

use satmapit_cgra::Cgra;
use satmapit_core::{Mapper, MapperConfig};
use satmapit_engine::{map_raced, BackendKind, EngineConfig, ShareConfig};
use satmapit_kernels::Kernel;
use satmapit_morph::MorphMapper;
use satmapit_obs as obs;
use satmapit_obs::Histogram;
use satmapit_sat::SolveLimits;
use std::fmt::Write as _;
use std::time::Instant;

/// The kernels whose 2x2/3x3 searches climb through UNSAT rungs before
/// mapping — the regime where the incremental ladder (and its GC) earns
/// or loses its keep.
const MULTI_RUNG: [&str; 4] = ["sha", "gsm", "bitcount", "stringsearch"];

fn multi_rung_kernels() -> Vec<Kernel> {
    MULTI_RUNG
        .iter()
        .map(|name| satmapit_kernels::by_name(name).expect("suite kernel"))
        .collect()
}

/// Wall-clock of mapping every kernel in `set` on `cgra` under `config`,
/// once. Each kernel's individual ladder time also lands in `latency`
/// (microseconds), so the suite total and the per-kernel distribution
/// come from the same passes.
fn time_suite_once(
    set: &[Kernel],
    cgra: &Cgra,
    config: &MapperConfig,
    latency: &mut Histogram,
) -> f64 {
    let t0 = Instant::now();
    for kernel in set {
        let k0 = Instant::now();
        let outcome = Mapper::new(&kernel.dfg, cgra)
            .with_config(config.clone())
            .run();
        latency.record(k0.elapsed().as_micros() as u64);
        assert!(outcome.ii().is_some(), "{} must map", kernel.name());
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// Per-variant minima over `reps` repetitions, with the variants
/// *interleaved* inside each repetition: on a shared/1-CPU box, machine
/// load drifts over the minutes a grid takes, and running all of one
/// variant's repetitions back-to-back would let that drift masquerade as
/// a variant difference. Adjacent passes see the same neighbours.
fn time_variants(
    set: &[Kernel],
    cgra: &Cgra,
    variants: &[Variant],
    reps: u32,
) -> (Vec<f64>, Vec<Histogram>) {
    let mut best = vec![f64::INFINITY; variants.len()];
    let mut latencies = vec![Histogram::new(); variants.len()];
    for _ in 0..reps {
        for (vi, variant) in variants.iter().enumerate() {
            best[vi] = best[vi].min(time_suite_once(
                set,
                cgra,
                &variant.config,
                &mut latencies[vi],
            ));
        }
    }
    (best, latencies)
}

/// The mapping backends compared head-to-head on every ladder grid.
/// The race is excluded here — its wall-clock mixes both backends and
/// is covered by the portfolio section below.
const BACKENDS: [(&str, BackendKind); 2] =
    [("sat", BackendKind::Sat), ("morph", BackendKind::Morph)];

/// Wall-clock of mapping every kernel in `set` on `cgra` through one
/// backend, once — same shape as [`time_suite_once`] so the per-backend
/// `ladder_latency_us` entries are directly comparable to the variant
/// ablation's.
fn time_backend_once(
    set: &[Kernel],
    cgra: &Cgra,
    backend: BackendKind,
    config: &MapperConfig,
    latency: &mut Histogram,
) -> f64 {
    let t0 = Instant::now();
    for kernel in set {
        let k0 = Instant::now();
        let ii = match backend {
            BackendKind::Sat => Mapper::new(&kernel.dfg, cgra)
                .with_config(config.clone())
                .run()
                .ii(),
            BackendKind::Morph => MorphMapper::new(&kernel.dfg, cgra)
                .with_config(config.clone())
                .run()
                .ii(),
            BackendKind::Race => map_raced(
                &kernel.dfg,
                cgra,
                &EngineConfig {
                    mapper: config.clone(),
                    backend,
                    ..EngineConfig::default()
                },
            )
            .ii(),
        };
        latency.record(k0.elapsed().as_micros() as u64);
        assert!(ii.is_some(), "{} must map under {backend}", kernel.name());
    }
    t0.elapsed().as_secs_f64() * 1e3
}

struct Variant {
    label: &'static str,
    config: MapperConfig,
}

fn variants() -> Vec<Variant> {
    let base = MapperConfig::default();
    vec![
        Variant {
            label: "scratch",
            config: MapperConfig {
                incremental: false,
                ..base.clone()
            },
        },
        Variant {
            label: "incremental",
            config: base.clone(),
        },
        Variant {
            label: "incremental_gc_off",
            config: MapperConfig {
                solver: satmapit_sat::SolverOptions {
                    gc: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            label: "incremental_no_transfer",
            config: MapperConfig {
                rung_transfer: false,
                ..base
            },
        },
    ]
}

/// Drives one full incremental ladder by hand (rung after rung until the
/// kernel maps) and reports the live solver's arena occupancy afterwards —
/// the number the GC exists to bound.
fn arena_after_ladder(kernel: &Kernel, cgra: &Cgra) -> (u32, satmapit_sat::SolverStats) {
    let mapper = Mapper::new(&kernel.dfg, cgra);
    let prepared = mapper.prepare().expect("suite kernels prepare");
    let mut ladder = prepared.ladder().expect("ladder opens");
    let mut ii = prepared.start_ii();
    loop {
        assert!(ii <= 50, "{} never mapped", kernel.name());
        let report = ladder
            .attempt_ii(ii, &SolveLimits::none())
            .expect("no limits set");
        if report.mapped.is_some() {
            return (ii, ladder.solver_stats().clone());
        }
        assert!(!report.proven_unmappable, "{} is mappable", kernel.name());
        ii += 1;
    }
}

fn json_num(v: f64) -> String {
    format!("{:.3}", v)
}

/// Aggregate traffic of one portfolio pass over a kernel set.
#[derive(Default)]
struct ShareTraffic {
    exported: u64,
    imported: u64,
    dropped: u64,
}

/// Wall-clock of racing every kernel in `set` on `cgra` with a 3-variant
/// portfolio, sharing on or off, once. Four workers force sibling
/// concurrency even on a 1-CPU runner (where one worker per hardware
/// thread would serialize the portfolio out of existence).
fn time_portfolio_once(set: &[Kernel], cgra: &Cgra, share: ShareConfig) -> (f64, ShareTraffic) {
    let config = EngineConfig {
        portfolio: 3,
        race_width: 2,
        workers: 4,
        share,
        ..EngineConfig::default()
    };
    let mut traffic = ShareTraffic::default();
    let t0 = Instant::now();
    for kernel in set {
        let raced = map_raced(&kernel.dfg, cgra, &config);
        assert!(raced.ii().is_some(), "{} must map", kernel.name());
        traffic.exported += raced.stats.shared_exported;
        traffic.imported += raced.stats.shared_imported;
        traffic.dropped += raced.stats.shared_dropped;
    }
    (t0.elapsed().as_secs_f64() * 1e3, traffic)
}

fn main() {
    // Progress tables go through obs at info level; keep them visible by
    // default unless the user asked for a specific filter.
    if std::env::var("SATMAPIT_LOG").is_err() {
        obs::log::set_filter("info");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps: u32 = 3;
    let mut out = String::from("BENCH_solver.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out takes a path").clone();
            }
            other => {
                // lint: allow(log-discipline) -- usage errors are stderr's contract
                eprintln!("usage: solver_bench [--reps N] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(reps > 0, "--reps must be positive");

    let multi_rung = multi_rung_kernels();
    let suite = satmapit_kernels::all();
    let mut json = String::from("{\n  \"bench\": \"solver\",\n");
    let _ = writeln!(json, "  \"reps\": {reps},");

    // 1. Wall-clock ablation grid: (kernel set × mesh) × variant.
    let grids: [(&str, &[Kernel], usize); 3] = [
        ("ladder_2x2_suite", &suite, 2),
        ("ladder_2x2_multi_rung", &multi_rung, 2),
        ("ladder_3x3_multi_rung", &multi_rung, 3),
    ];
    let mut grid_latencies: Vec<(&str, Vec<(&'static str, Histogram)>)> = Vec::new();
    json.push_str("  \"ladders_ms\": {\n");
    for (gi, (grid_label, set, size)) in grids.iter().enumerate() {
        let cgra = Cgra::square(*size as u16);
        let _ = write!(json, "    \"{grid_label}\": {{");
        let variant_set = variants();
        let (minima, latencies) = time_variants(set, &cgra, &variant_set, reps);
        for (vi, (variant, &ms)) in variant_set.iter().zip(&minima).enumerate() {
            obs::info!(
                "satmapit::bench::solver",
                "{grid_label:24} {:24} {:>9.1} ms",
                variant.label,
                ms
            );
            let sep = if vi == 0 { "" } else { ", " };
            let _ = write!(json, "{sep}\"{}\": {}", variant.label, json_num(ms));
        }
        let sep = if gi + 1 == grids.len() { "" } else { "," };
        let _ = writeln!(json, "}}{sep}");
        let mut per_grid: Vec<(&'static str, Histogram)> =
            variant_set.iter().map(|v| v.label).zip(latencies).collect();

        // Head-to-head backend pass on the same grid: the default-config
        // SAT ladder vs the monomorphism backend, interleaved per
        // repetition like the variants. Each backend must map every
        // kernel in the set (asserted inside `time_backend_once`), so a
        // morph regression that stops solving suite kernels fails the
        // bench outright. The full-suite grid is excluded: `hotspot`
        // sits in morph's small-mesh blind spot (its feasible rung at
        // 2x2/3x3 has a huge candidate space with sparse solutions and
        // does not finish in bench budget; it maps fine at 4x4, pinned
        // by the cross-backend agreement suite).
        if *grid_label == "ladder_2x2_suite" {
            grid_latencies.push((grid_label, per_grid));
            continue;
        }
        let backend_config = MapperConfig::default();
        let mut backend_best = [f64::INFINITY; BACKENDS.len()];
        let mut backend_lat = vec![Histogram::new(); BACKENDS.len()];
        for _ in 0..reps {
            for (bi, &(_, kind)) in BACKENDS.iter().enumerate() {
                backend_best[bi] = backend_best[bi].min(time_backend_once(
                    set,
                    &cgra,
                    kind,
                    &backend_config,
                    &mut backend_lat[bi],
                ));
            }
        }
        for (&(label, _), (&ms, hist)) in BACKENDS.iter().zip(backend_best.iter().zip(backend_lat))
        {
            obs::info!(
                "satmapit::bench::solver",
                "{grid_label:24} backend:{label:16} {ms:>9.1} ms"
            );
            per_grid.push((label, hist));
        }
        grid_latencies.push((grid_label, per_grid));
    }
    json.push_str("  },\n");

    // Per-kernel ladder-time distributions from the same passes: every
    // individual kernel solve (all repetitions pooled) lands in a
    // log-bucketed histogram, and p50/p99 go into the JSON so the bench
    // trajectory tracks tail latency, not just suite totals.
    json.push_str("  \"ladder_latency_us\": {\n");
    for (gi, (grid_label, per_variant)) in grid_latencies.iter().enumerate() {
        let _ = writeln!(json, "    \"{grid_label}\": {{");
        for (vi, (label, hist)) in per_variant.iter().enumerate() {
            let snap = hist.snapshot();
            obs::info!(
                "satmapit::bench::solver",
                "{grid_label:24} {label:24} p50={:>8} us  p99={:>8} us  (n={})",
                snap.p50,
                snap.p99,
                snap.count
            );
            let sep = if vi + 1 == per_variant.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "      \"{label}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{sep}",
                snap.count, snap.p50, snap.p99, snap.max,
            );
        }
        let sep = if gi + 1 == grid_latencies.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    }}{sep}");
    }
    json.push_str("  },\n");

    // 2. Portfolio clause-sharing ablation: the multi-rung kernels at 2x2
    //    through a 3-variant portfolio race, sharing off vs on,
    //    interleaved per repetition like the ladder grid. The share-on
    //    pass must show real traffic (`shared_imported > 0`) — asserted
    //    here so CI fails the moment sharing rots into a silent no-op.
    {
        let cgra = Cgra::square(2);
        let mut best = [f64::INFINITY; 2];
        let mut imported_any = 0u64;
        let mut last_traffic = ShareTraffic::default();
        for _ in 0..reps {
            for (vi, share) in [ShareConfig::off(), ShareConfig::on()]
                .into_iter()
                .enumerate()
            {
                let (ms, traffic) = time_portfolio_once(&multi_rung, &cgra, share);
                best[vi] = best[vi].min(ms);
                if share.enabled {
                    imported_any += traffic.imported;
                    last_traffic = traffic;
                }
            }
        }
        obs::info!(
            "satmapit::bench::solver",
            "portfolio_share_2x2      share_off                {:>9.1} ms",
            best[0]
        );
        obs::info!(
            "satmapit::bench::solver",
            "portfolio_share_2x2      share_on                 {:>9.1} ms  (exported={} imported={} dropped={})",
            best[1],
            last_traffic.exported,
            last_traffic.imported,
            last_traffic.dropped
        );
        let _ = writeln!(
            json,
            "  \"portfolio_share_2x2_ms\": {{\"share_off\": {}, \"share_on\": {}}},",
            json_num(best[0]),
            json_num(best[1]),
        );
        let _ = writeln!(
            json,
            "  \"portfolio_share_2x2_traffic\": {{\"exported\": {}, \"imported\": {}, \"dropped\": {}}},",
            last_traffic.exported, last_traffic.imported, last_traffic.dropped,
        );
        assert!(
            imported_any > 0,
            "share-on portfolio runs must import sibling clauses; \
             0 imports means sharing has rotted into a no-op"
        );
    }

    // 3. Arena waste after a full multi-rung ladder (GC on, default
    //    config): the acceptance bound is waste ≤ 25 % of the arena.
    json.push_str("  \"arena_after_ladder\": [\n");
    let arena_cells: Vec<(&Kernel, u16)> = multi_rung
        .iter()
        .flat_map(|k| [(k, 2u16), (k, 3u16)])
        .collect();
    for (ki, &(kernel, size)) in arena_cells.iter().enumerate() {
        let (ii, stats) = arena_after_ladder(kernel, &Cgra::square(size));
        let fraction = stats.arena_wasted as f64 / stats.arena_words.max(1) as f64;
        obs::info!(
            "satmapit::bench::solver",
            "arena {:14} {size}x{size} ii={ii:<3} words={:<9} wasted={:<8} ({:.1} %) gc_runs={} lits_reclaimed={}",
            kernel.name(),
            stats.arena_words,
            stats.arena_wasted,
            fraction * 100.0,
            stats.gc_runs,
            stats.lits_reclaimed,
        );
        let sep = if ki + 1 == arena_cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"cgra\": \"{size}x{size}\", \"mapped_ii\": {ii}, \
             \"arena_words\": {}, \"arena_wasted\": {}, \"waste_fraction\": {}, \
             \"gc_runs\": {}, \"lits_reclaimed\": {}}}{sep}",
            kernel.name(),
            stats.arena_words,
            stats.arena_wasted,
            json_num(fraction),
            stats.gc_runs,
            stats.lits_reclaimed,
        );
        assert!(
            fraction <= 0.25,
            "post-ladder arena waste must stay below 25 % (got {:.1} %)",
            fraction * 100.0
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out, &json).expect("write BENCH_solver.json");
    println!("{json}");
    obs::info!("satmapit::bench::solver", "wrote {out}");
}
