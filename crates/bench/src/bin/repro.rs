//! Regenerates the paper's evaluation artifacts.
//!
//! ```sh
//! repro figure6 [--timeout 60] [--sizes 2,3,4,5] [--kernels sha,gsm] [--out results/]
//! repro table 2            # Table I (2x2) … table 5 = Table IV (5x5)
//! repro summary
//! repro all                # everything, plus CSV dump
//! ```
//!
//! Timings are machine-local; the paper's shape (who wins, where the
//! crossovers fall) is the reproduction target, not absolute seconds.

#![forbid(unsafe_code)]

use satmapit_bench::{report, run_grid, GridConfig};
use satmapit_obs as obs;
use std::time::Duration;

fn main() {
    // Progress lines go through obs at info level; keep them visible by
    // default unless the user asked for a specific filter.
    if std::env::var("SATMAPIT_LOG").is_err() {
        obs::log::set_filter("info");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let mut config = GridConfig::default();
    let mut out_dir: Option<String> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                let secs: u64 = args[i].parse().expect("--timeout takes seconds");
                config.timeout = Duration::from_secs(secs);
            }
            "--sizes" => {
                i += 1;
                config.sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes e.g. 2,3,4,5"))
                    .collect();
            }
            "--kernels" => {
                i += 1;
                config.kernels = args[i].split(',').map(str::to_string).collect();
            }
            "--max-ii" => {
                i += 1;
                config.max_ii = args[i].parse().expect("--max-ii takes an integer");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out_dir = Some(args[i].clone());
            }
            other => {
                // `table N` consumes its argument below.
                if command != "table" || i != 1 {
                    panic!("unknown argument `{other}`");
                }
            }
        }
        i += 1;
    }

    match command {
        "figure6" => {
            let cells = run_grid(&config);
            print!(
                "{}",
                report::figure6(&cells, &config.sizes, &config.kernels)
            );
            dump(&cells, out_dir.as_deref());
        }
        "table" => {
            let size: u16 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: repro table <2|3|4|5>");
            config.sizes = vec![size];
            let cells = run_grid(&config);
            print!("{}", report::table(&cells, size, &config.kernels));
            dump(&cells, out_dir.as_deref());
        }
        "summary" => {
            let cells = run_grid(&config);
            print!(
                "{}",
                report::summary(&cells, &config.sizes, &config.kernels)
            );
            dump(&cells, out_dir.as_deref());
        }
        "all" => {
            let cells = run_grid(&config);
            print!(
                "{}",
                report::figure6(&cells, &config.sizes, &config.kernels)
            );
            for &size in &config.sizes {
                print!("{}", report::table(&cells, size, &config.kernels));
            }
            print!(
                "{}",
                report::summary(&cells, &config.sizes, &config.kernels)
            );
            dump(&cells, out_dir.as_deref());
        }
        other => {
            // lint: allow(log-discipline) -- usage errors are stderr's contract
            eprintln!("unknown command `{other}`; use figure6|table|summary|all");
            std::process::exit(2);
        }
    }
}

fn dump(cells: &[satmapit_bench::Cell], out_dir: Option<&str>) {
    let Some(dir) = out_dir else { return };
    std::fs::create_dir_all(dir).expect("create out dir");
    let path = format!("{dir}/cells.csv");
    std::fs::write(&path, report::to_csv(cells)).expect("write csv");
    obs::info!("satmapit::bench::repro", "wrote {path}");
}
