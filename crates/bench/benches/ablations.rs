//! Ablations of the design choices called out in DESIGN.md:
//!
//! * at-most-one encoding (the paper's pairwise Eq. 1/2 vs sequential),
//! * the C4 register-pressure constraints (extension) vs pure post-hoc
//!   register allocation (the paper's flow),
//! * mobility-window slack (paper-strict `Zero` vs the default
//!   `FullWheel`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satmapit_cgra::Cgra;
use satmapit_core::encoder::{encode_with_options, EncodeOptions};
use satmapit_core::{Mapper, MapperConfig, SlackPolicy};
use satmapit_sat::encode::AmoEncoding;
use satmapit_sat::Solver;
use satmapit_schedule::{Kms, MobilitySchedule};

fn bench_amo_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_amo");
    group.sample_size(10);
    let kernel = satmapit_kernels::by_name("gsm").unwrap();
    let cgra = Cgra::square(3);
    let ms = MobilitySchedule::compute(&kernel.dfg).unwrap();
    let kms = Kms::build_with_slack(&ms, 4, 3);
    for (label, amo) in [
        ("pairwise", AmoEncoding::Pairwise),
        ("sequential", AmoEncoding::Sequential),
        ("auto", AmoEncoding::Auto),
    ] {
        group.bench_with_input(BenchmarkId::new("gsm_ii4", label), &amo, |b, &amo| {
            b.iter(|| {
                let enc = encode_with_options(
                    &kernel.dfg,
                    &cgra,
                    &kms,
                    EncodeOptions {
                        amo,
                        register_pressure: true,
                    },
                )
                .unwrap();
                Solver::from_cnf(&enc.formula).solve()
            })
        });
    }
    group.finish();
}

fn bench_register_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pressure");
    group.sample_size(10);
    let kernel = satmapit_kernels::by_name("sha").unwrap();
    let cgra = Cgra::square(3);
    for (label, pressure) in [("c4_encoded", true), ("posthoc_ra", false)] {
        group.bench_with_input(
            BenchmarkId::new("sha_3x3", label),
            &pressure,
            |b, &pressure| {
                b.iter(|| {
                    let config = MapperConfig {
                        max_ii: 20,
                        register_pressure: pressure,
                        ..MapperConfig::default()
                    };
                    let outcome = Mapper::new(&kernel.dfg, &cgra).with_config(config).run();
                    assert!(outcome.ii().is_some());
                })
            },
        );
    }
    group.finish();
}

fn bench_slack_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_slack");
    group.sample_size(10);
    let kernel = satmapit_kernels::by_name("bitcount").unwrap();
    let cgra = Cgra::square(4);
    for (label, slack) in [
        ("paper_zero", SlackPolicy::Zero),
        ("full_wheel", SlackPolicy::FullWheel),
    ] {
        group.bench_with_input(
            BenchmarkId::new("bitcount_4x4", label),
            &slack,
            |b, &slack| {
                b.iter(|| {
                    let config = MapperConfig {
                        max_ii: 20,
                        slack,
                        ..MapperConfig::default()
                    };
                    Mapper::new(&kernel.dfg, &cgra).with_config(config).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_amo_encodings,
    bench_register_pressure,
    bench_slack_policy
);
criterion_main!(benches);
