//! Sequential mapper vs. parallel engine, wall-clock, on the 11-kernel
//! suite: the headline numbers for the II-race. Also measures the cache's
//! hit path and the portfolio overhead on a single kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satmapit_cgra::Cgra;
use satmapit_core::{Mapper, MapperConfig};
use satmapit_engine::{map_raced, Engine, EngineConfig, Job};

fn bench_suite_sequential_vs_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_3x3");
    group.sample_size(10);

    group.bench_function("sequential_all_kernels", |b| {
        b.iter(|| {
            for kernel in satmapit_kernels::all() {
                let cgra = Cgra::square(3);
                let outcome = Mapper::new(&kernel.dfg, &cgra).run();
                assert!(outcome.ii().is_some(), "{}", kernel.name());
            }
        })
    });

    group.bench_function("engine_all_kernels", |b| {
        b.iter(|| {
            let config = EngineConfig::default();
            for kernel in satmapit_kernels::all() {
                let cgra = Cgra::square(3);
                let outcome = map_raced(&kernel.dfg, &cgra, &config);
                assert!(outcome.ii().is_some(), "{}", kernel.name());
            }
        })
    });

    group.bench_function("engine_batch_all_kernels", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            let jobs: Vec<Job> = satmapit_kernels::all()
                .into_iter()
                .map(|k| Job::new(k.name().to_string(), k.dfg, Cgra::square(3)))
                .collect();
            let items = engine.map_batch(jobs);
            assert!(items.iter().all(|i| i.outcome.ii().is_some()));
        })
    });

    group.finish();
}

fn bench_single_kernel_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_3x3");
    group.sample_size(10);
    let kernel = satmapit_kernels::by_name("hotspot").unwrap();
    let cgra = Cgra::square(3);

    group.bench_function("sequential", |b| {
        b.iter(|| Mapper::new(&kernel.dfg, &cgra).run())
    });
    for (label, config) in [
        ("race_w4", EngineConfig::default()),
        (
            "race_w4_portfolio3",
            EngineConfig {
                portfolio: 3,
                ..EngineConfig::default()
            },
        ),
        (
            "race_w1",
            EngineConfig {
                race_width: 1,
                ..EngineConfig::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("engine", label), &config, |b, config| {
            b.iter(|| map_raced(&kernel.dfg, &cgra, config))
        });
    }
    group.finish();
}

/// The incremental-vs-scratch II-ladder ablation: one live solver with
/// assumption-gated per-II clause groups against the paper's re-encode /
/// re-solve loop. Measured on the 2x2 mesh — the constrained regime where
/// ladders are longest (the paper's Fig. 6 hard column) — both over the
/// multi-rung kernels (those whose search climbs through UNSAT rungs) and
/// over the whole 11-kernel suite.
fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder_2x2");
    group.sample_size(10);
    let multi_rung = ["sha", "gsm", "bitcount", "stringsearch"];
    for (label, incremental) in [("scratch", false), ("incremental", true)] {
        let config = MapperConfig {
            incremental,
            ..MapperConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("multi_rung_total", label),
            &config,
            |b, config| {
                b.iter(|| {
                    for name in multi_rung {
                        let kernel = satmapit_kernels::by_name(name).unwrap();
                        let cgra = Cgra::square(2);
                        let outcome = Mapper::new(&kernel.dfg, &cgra)
                            .with_config(config.clone())
                            .run();
                        assert!(outcome.ii().is_some(), "{name}");
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("suite_total", label),
            &config,
            |b, config| {
                b.iter(|| {
                    for kernel in satmapit_kernels::all() {
                        let cgra = Cgra::square(2);
                        let outcome = Mapper::new(&kernel.dfg, &cgra)
                            .with_config(config.clone())
                            .run();
                        assert!(outcome.ii().is_some(), "{}", kernel.name());
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cache");
    let kernel = satmapit_kernels::by_name("srand").unwrap();
    let cgra = Cgra::square(3);
    let engine = Engine::new(EngineConfig::default());
    let _ = engine.map(&kernel.dfg, &cgra); // warm the cache
    group.bench_function("hit", |b| {
        b.iter(|| {
            let (outcome, cached) = engine.map(&kernel.dfg, &cgra);
            assert!(cached);
            outcome
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suite_sequential_vs_engine,
    bench_single_kernel_modes,
    bench_incremental_vs_scratch,
    bench_cache_hit_path
);
criterion_main!(benches);
