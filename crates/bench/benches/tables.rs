//! Tables I–IV as Criterion benchmarks: mapping *time* per mapper on
//! representative benchmarks (the full timing tables over all cells come
//! from the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satmapit_baselines::{BaselineConfig, PathSeekerMapper, RampMapper};
use satmapit_cgra::Cgra;
use satmapit_core::{Mapper, MapperConfig};

fn bench_mapping_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableII_3x3");
    group.sample_size(10);
    let cgra = Cgra::square(3);
    for name in ["srand", "gsm", "nw"] {
        let kernel = satmapit_kernels::by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("satmapit", name), &kernel, |b, k| {
            b.iter(|| {
                let config = MapperConfig {
                    max_ii: 20,
                    ..MapperConfig::default()
                };
                Mapper::new(&k.dfg, &cgra).with_config(config).run()
            })
        });
        group.bench_with_input(BenchmarkId::new("ramp", name), &kernel, |b, k| {
            b.iter(|| {
                let config = BaselineConfig {
                    max_ii: 20,
                    ..BaselineConfig::default()
                };
                RampMapper::new(&k.dfg, &cgra).with_config(config).run()
            })
        });
        group.bench_with_input(BenchmarkId::new("pathseeker", name), &kernel, |b, k| {
            b.iter(|| {
                let config = BaselineConfig {
                    max_ii: 20,
                    ..BaselineConfig::default()
                };
                PathSeekerMapper::new(&k.dfg, &cgra)
                    .with_config(config)
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping_time);
criterion_main!(benches);
