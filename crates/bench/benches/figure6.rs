//! Figure 6 cells as Criterion benchmarks: end-to-end SAT-MapIt mapping
//! time per (kernel, mesh size). The full sweep (all kernels, all sizes,
//! with failure marks) is produced by the `repro` binary; Criterion runs
//! the fast cells repeatedly for stable timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satmapit_cgra::Cgra;
use satmapit_core::{Mapper, MapperConfig};

fn bench_figure6_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_satmapit");
    group.sample_size(10);
    for name in ["srand", "basicmath", "gsm", "sha2", "nw"] {
        let kernel = satmapit_kernels::by_name(name).unwrap();
        for size in [2u16, 3, 4] {
            let cgra = Cgra::square(size);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{size}x{size}")),
                &cgra,
                |b, cgra| {
                    b.iter(|| {
                        let config = MapperConfig {
                            max_ii: 20,
                            ..MapperConfig::default()
                        };
                        let outcome = Mapper::new(&kernel.dfg, cgra).with_config(config).run();
                        assert!(outcome.ii().is_some(), "{name} must map");
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure6_cells);
criterion_main!(benches);
