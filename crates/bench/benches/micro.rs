#![allow(clippy::needless_range_loop)] // pigeonhole matrices read best indexed

//! Micro-benchmarks of the substrates: SAT solving, constraint encoding,
//! schedule construction, clique search and colouring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satmapit_cgra::Cgra;
use satmapit_core::encoder::encode;
use satmapit_graphs::{clique, coloring, UnGraph};
use satmapit_sat::encode::AmoEncoding;
use satmapit_sat::{CnfFormula, Lit, SolveResult, Solver};
use satmapit_schedule::{Kms, MobilitySchedule};

fn pigeonhole(holes: usize) -> CnfFormula {
    let pigeons = holes + 1;
    let mut f = CnfFormula::new();
    let mut var = vec![vec![Lit::from_code(0); holes]; pigeons];
    for p in 0..pigeons {
        for h in 0..holes {
            var[p][h] = f.new_var().positive();
        }
    }
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| var[p][h]).collect();
        f.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_clause(&[!var[p1][h], !var[p2][h]]);
            }
        }
    }
    f
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(20);
    for holes in [6usize, 7] {
        let f = pigeonhole(holes);
        group.bench_with_input(BenchmarkId::new("pigeonhole_unsat", holes), &f, |b, f| {
            b.iter(|| {
                let mut s = Solver::from_cnf(f);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    // A satisfiable mapping instance: the paper example at II=3 on 2x2.
    let kernel = satmapit_kernels::paper_example();
    let cgra = Cgra::square(2);
    let ms = MobilitySchedule::compute(&kernel.dfg).unwrap();
    let kms = Kms::build_with_slack(&ms, 3, 2);
    let enc = encode(&kernel.dfg, &cgra, &kms, AmoEncoding::Auto).unwrap();
    group.bench_function("paper_example_ii3_sat", |b| {
        b.iter(|| {
            let mut s = Solver::from_cnf(&enc.formula);
            assert_eq!(s.solve(), SolveResult::Sat);
        })
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    let kernel = satmapit_kernels::by_name("patricia").unwrap();
    for size in [2u16, 4] {
        let cgra = Cgra::square(size);
        let ms = MobilitySchedule::compute(&kernel.dfg).unwrap();
        let kms = Kms::build_with_slack(&ms, 6, 5);
        group.bench_with_input(
            BenchmarkId::new("patricia_ii6", size),
            &(cgra, kms),
            |b, (cgra, kms)| b.iter(|| encode(&kernel.dfg, cgra, kms, AmoEncoding::Auto).unwrap()),
        );
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    for name in ["sha", "hotspot"] {
        let kernel = satmapit_kernels::by_name(name).unwrap();
        group.bench_function(BenchmarkId::new("mobility", name), |b| {
            b.iter(|| MobilitySchedule::compute(&kernel.dfg).unwrap())
        });
        let ms = MobilitySchedule::compute(&kernel.dfg).unwrap();
        group.bench_function(BenchmarkId::new("kms_fold", name), |b| {
            b.iter(|| Kms::build_with_slack(&ms, 4, 3))
        });
    }
    group.finish();
}

fn bench_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs");
    // Planted clique.
    let mut g = UnGraph::new(40);
    let planted = [3usize, 9, 15, 21, 27, 33, 39];
    for (i, &u) in planted.iter().enumerate() {
        for &v in &planted[i + 1..] {
            g.add_edge(u, v);
        }
    }
    for k in 0..40 {
        g.add_edge(k, (k + 2) % 40);
    }
    group.bench_function("max_clique_40", |b| {
        b.iter(|| clique::max_clique(&g, 1_000_000))
    });
    // Colouring a wheel-ish interference graph.
    let mut ig = UnGraph::new(24);
    for u in 0..24 {
        for d in 1..4 {
            ig.add_edge(u, (u + d) % 24);
        }
    }
    group.bench_function("exact_coloring_24", |b| {
        b.iter(|| coloring::exact_k_coloring(&ig, 4, 1_000_000))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solver,
    bench_encoding,
    bench_schedules,
    bench_graphs
);
criterion_main!(benches);
