//! The persistence payoff: cold solve vs. in-memory cache hit vs. warm
//! restart from the on-disk stores, on the 11-kernel 2x2 suite — the
//! headline numbers for mapping-as-a-service ("a warm restart answers
//! repeat lookups without touching the SAT solver").

use criterion::{criterion_group, criterion_main, Criterion};
use satmapit_cgra::Cgra;
use satmapit_engine::{Engine, EngineConfig, Job};
use std::path::PathBuf;

fn suite_jobs() -> Vec<Job> {
    satmapit_kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name().to_string(), k.dfg, Cgra::square(2)))
        .collect()
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "satmapit-bench-persist-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench cache dir");
    dir
}

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_2x2_suite");
    group.sample_size(10);

    group.bench_function("cold_solve", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            let items = engine.map_batch(suite_jobs());
            assert!(items.iter().all(|i| i.outcome.ii().is_some()));
        })
    });

    group.bench_function("memory_cache_hit", |b| {
        let engine = Engine::new(EngineConfig::default());
        let _ = engine.map_batch(suite_jobs());
        b.iter(|| {
            let items = engine.map_batch(suite_jobs());
            assert!(items.iter().all(|i| i.cached));
        })
    });

    // Warm restart: load the stores, answer the whole suite, throw the
    // engine away — the cost of "daemon restart + first repeat batch".
    let dir = temp_cache_dir("warm");
    {
        let engine = Engine::with_cache_dir(EngineConfig::default(), &dir).expect("cache dir");
        let _ = engine.map_batch(suite_jobs());
        // drop → compaction
    }
    group.bench_function("warm_restart_from_disk", |b| {
        b.iter(|| {
            let engine = Engine::with_cache_dir(EngineConfig::default(), &dir).expect("cache dir");
            let items = engine.map_batch(suite_jobs());
            assert!(items.iter().all(|i| i.cached), "no SAT work after restart");
            let stats = engine.cache_stats();
            assert_eq!(stats.misses, 0);
            // Skip the shutdown compaction in the timed path: nothing
            // changed, and `drop` would rewrite the files anyway.
            std::mem::forget(engine);
        })
    });
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
