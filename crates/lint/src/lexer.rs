//! A token-level Rust lexer — the foundation every lint walks.
//!
//! Regex-over-source linting breaks on exactly the inputs that matter:
//! a `".lock().unwrap()"` inside a string literal, a `//` inside a raw
//! string, a nested `/* /* */ */` block comment, a lifetime `'a` that a
//! naive scanner reads as an unterminated char literal. This lexer
//! resolves all of those the way `rustc`'s own lexer does, so the lints
//! above it can match on *tokens* and never on raw text:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as tokens so waiver/justification comments
//!   stay visible to the lints;
//! * string-ish literals: `"…"` with escapes, `b"…"`, `c"…"`, and raw
//!   forms `r"…"` / `r#"…"#` / `br##"…"##` with any hash depth;
//! * char literals (`'x'`, `'\n'`, `'\u{1F600}'`, `b'\0'`) vs
//!   lifetimes (`'a`, `'static`) — disambiguated by lookahead, the one
//!   place Rust's lexical grammar needs it;
//! * identifiers (including raw `r#match`), numbers (with underscores,
//!   type suffixes, exponents — and without eating the `..` of `0..n`),
//!   and single-character punctuation.
//!
//! Tokens carry byte spans and 1-based line numbers; concatenating the
//! spans plus the whitespace between them reconstructs the input
//! exactly (property-tested), which is what makes the lexer trustworthy
//! as a *reporting* substrate: a finding's line number is the real one.

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Any string-ish literal: `"…"`, `b"…"`, `c"…"`, `r#"…"#`, …
    Str,
    /// A numeric literal (integer or float, suffixes included).
    Number,
    /// One punctuation character (`.`, `:`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens; the lints don't need
    /// them joined.
    Punct,
    /// A `//` comment, text up to (not including) the newline.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
}

/// One lexed token: kind, byte span into the source, 1-based line of its
/// first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Is this token a comment (line or block)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// Advances one byte, counting newlines. Multi-byte UTF-8 sequences
    /// are advanced byte-wise; none of their continuation bytes can be
    /// mistaken for ASCII, so the state machine stays correct.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Whitespace is skipped (it is recoverable as
/// the gaps between spans); everything else becomes exactly one token.
/// Unterminated literals and comments extend to end-of-input rather
/// than panicking — a linter must survive any byte soup it is handed.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cursor = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cursor.peek() {
        let start = cursor.pos;
        let line = cursor.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cursor.bump();
                continue;
            }
            b'/' if cursor.peek_at(1) == Some(b'/') => {
                cursor.eat_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if cursor.peek_at(1) == Some(b'*') => {
                lex_block_comment(&mut cursor);
                TokenKind::BlockComment
            }
            b'"' => {
                lex_string(&mut cursor);
                TokenKind::Str
            }
            b'\'' => lex_quote(&mut cursor),
            b'r' | b'b' | b'c' if starts_prefixed_literal(&cursor) => {
                lex_prefixed_literal(&mut cursor)
            }
            _ if is_ident_start(b) => {
                cursor.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cursor);
                TokenKind::Number
            }
            _ => {
                cursor.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: cursor.pos,
            line,
        });
    }
    tokens
}

/// At `/*`: consumes the whole comment, honouring nesting.
fn lex_block_comment(cursor: &mut Cursor<'_>) {
    cursor.bump(); // '/'
    cursor.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cursor.peek(), cursor.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cursor.bump();
                cursor.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cursor.bump();
                cursor.bump();
            }
            (Some(_), _) => cursor.bump(),
            (None, _) => break, // unterminated: extends to EOF
        }
    }
}

/// At `"`: consumes a (non-raw) string literal, escapes respected.
fn lex_string(cursor: &mut Cursor<'_>) {
    cursor.bump(); // opening quote
    while let Some(b) = cursor.peek() {
        match b {
            b'\\' => {
                cursor.bump();
                if cursor.peek().is_some() {
                    cursor.bump(); // the escaped byte, whatever it is
                }
            }
            b'"' => {
                cursor.bump();
                return;
            }
            _ => cursor.bump(),
        }
    }
}

/// Does the cursor sit on a string/char literal prefix (`r"`, `r#"`,
/// `b"`, `b'`, `br#"`, `c"`, …) rather than a plain identifier starting
/// with that letter? Also recognises raw identifiers `r#ident` (which
/// are *not* literals but need the `r#` consumed as part of the ident).
fn starts_prefixed_literal(cursor: &Cursor<'_>) -> bool {
    let b0 = cursor.peek();
    let b1 = cursor.peek_at(1);
    match (b0, b1) {
        (Some(b'r' | b'c'), Some(b'"')) | (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'r'), Some(b'#')) => true, // raw string OR raw identifier
        (Some(b'b'), Some(b'r')) if matches!(cursor.peek_at(2), Some(b'"' | b'#')) => true,
        _ => false,
    }
}

/// At a literal prefix (per [`starts_prefixed_literal`]): consumes the
/// whole literal and returns its kind. `r#ident` is disambiguated from
/// `r#"…"#` here and lexed as an identifier.
fn lex_prefixed_literal(cursor: &mut Cursor<'_>) -> TokenKind {
    let first = cursor.peek();
    if first == Some(b'b') && cursor.peek_at(1) == Some(b'\'') {
        cursor.bump(); // 'b'
        lex_char_literal(cursor);
        return TokenKind::Char;
    }
    if first == Some(b'b') && cursor.peek_at(1) == Some(b'"') {
        cursor.bump();
        lex_string(cursor);
        return TokenKind::Str;
    }
    if matches!(first, Some(b'r' | b'c')) && cursor.peek_at(1) == Some(b'"') {
        cursor.bump();
        if first == Some(b'r') {
            lex_raw_string(cursor);
        } else {
            lex_string(cursor);
        }
        return TokenKind::Str;
    }
    // `r#…`: raw string if a quote follows the hashes, raw ident if an
    // identifier character does.
    if first == Some(b'r') && cursor.peek_at(1) == Some(b'#') {
        let mut hashes = 0;
        while cursor.peek_at(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cursor.peek_at(1 + hashes) == Some(b'"') {
            cursor.bump(); // 'r'
            lex_raw_string(cursor);
            return TokenKind::Str;
        }
        cursor.bump(); // 'r'
        cursor.bump(); // '#'
        cursor.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    // `br…`
    cursor.bump(); // 'b'
    cursor.bump(); // 'r'
    lex_raw_string(cursor);
    TokenKind::Str
}

/// At the `#`s or `"` of a raw string body (the `r`/`br` prefix already
/// consumed): counts the hashes, then scans for `"` followed by that
/// many hashes. No escapes inside.
fn lex_raw_string(cursor: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cursor.peek() == Some(b'#') {
        hashes += 1;
        cursor.bump();
    }
    if cursor.peek() != Some(b'"') {
        return; // malformed; leave the rest to ordinary lexing
    }
    cursor.bump(); // opening quote
    while let Some(b) = cursor.peek() {
        cursor.bump();
        if b == b'"' {
            let mut matched = 0usize;
            while matched < hashes && cursor.peek() == Some(b'#') {
                cursor.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

/// At `'`: the classic fork. `'a'` is a char literal; `'a` (no closing
/// quote after one identifier) is a lifetime. Escaped contents (`'\n'`,
/// `'\''`) are always char literals.
fn lex_quote(cursor: &mut Cursor<'_>) -> TokenKind {
    // Lookahead without consuming: quote, then…
    match cursor.peek_at(1) {
        // `'\…'`: escape ⇒ char literal.
        Some(b'\\') => {
            lex_char_literal(cursor);
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // Scan the identifier run after the quote.
            let mut offset = 2;
            while cursor.peek_at(offset).is_some_and(is_ident_continue) {
                offset += 1;
            }
            if cursor.peek_at(offset) == Some(b'\'') {
                // `'x'`, `'é'` (multi-byte ident-continue run) — char.
                lex_char_literal(cursor);
                TokenKind::Char
            } else {
                // `'a`, `'static` — lifetime; consume quote + ident.
                cursor.bump();
                cursor.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        // `'.'`, `' '`, `'"'` … — single non-ident char ⇒ char literal.
        Some(_) => {
            lex_char_literal(cursor);
            TokenKind::Char
        }
        None => {
            cursor.bump();
            TokenKind::Punct // stray trailing quote
        }
    }
}

/// At the opening `'` of a char literal: consumes through the closing
/// quote (escapes respected; unterminated extends to end of line).
fn lex_char_literal(cursor: &mut Cursor<'_>) {
    cursor.bump(); // opening quote
    while let Some(b) = cursor.peek() {
        match b {
            b'\\' => {
                cursor.bump();
                if cursor.peek().is_some() {
                    cursor.bump();
                }
            }
            b'\'' => {
                cursor.bump();
                return;
            }
            b'\n' => return, // unterminated; don't swallow the file
            _ => cursor.bump(),
        }
    }
}

/// At a digit: consumes a numeric literal — digits, underscores, type
/// suffixes, hex/oct/bin bodies, and a fractional part or exponent when
/// present. Deliberately does *not* consume the `..` of `0..n`.
fn lex_number(cursor: &mut Cursor<'_>) {
    cursor.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // Fractional part: only if `.` is followed by a digit (so `0..n`
    // and `1.method()` keep their dots).
    if cursor.peek() == Some(b'.') && cursor.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        cursor.bump();
        cursor.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // Exponent sign: `1e-3` leaves `eat_while` at the `-`.
    if matches!(cursor.peek(), Some(b'+' | b'-'))
        && cursor
            .src
            .as_bytes()
            .get(cursor.pos.wrapping_sub(1))
            .is_some_and(|b| matches!(b, b'e' | b'E'))
        && cursor.peek_at(1).is_some_and(|b| b.is_ascii_digit())
    {
        cursor.bump();
        cursor.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"call(".lock().unwrap()");"#;
        let toks = kinds(src);
        assert_eq!(toks[2], (TokenKind::Str, "\".lock().unwrap()\""));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "lock"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"x(r"a\", r#"b " b"#, br##"c "# c"##)"####;
        let strs: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            strs,
            vec![r#"r"a\""#, r##"r#"b " b"#"##, r###"br##"c "# c"##"###]
        );
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(kinds("r#match"), vec![(TokenKind::Ident, "r#match")]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(
            kinds(src),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment, "/* x /* y */ z */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("&'a str, 'x', '\\n', b'q', 'static"),
            vec![
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Ident, "str"),
                (TokenKind::Punct, ","),
                (TokenKind::Char, "'x'"),
                (TokenKind::Punct, ","),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Punct, ","),
                (TokenKind::Char, "b'q'"),
                (TokenKind::Punct, ","),
                (TokenKind::Lifetime, "'static"),
            ]
        );
    }

    #[test]
    fn quote_escape_char_is_not_a_lifetime() {
        assert_eq!(kinds("'\\''"), vec![(TokenKind::Char, "'\\''")]);
    }

    #[test]
    fn comment_markers_inside_strings_stay_strings() {
        let src = r#"let s = "// not a comment /* nor this";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .all(|(k, _)| !matches!(k, TokenKind::LineComment | TokenKind::BlockComment)));
    }

    #[test]
    fn line_numbers_are_one_based_and_newline_aware() {
        let src = "a\nb\n\n  c /* multi\nline */ d";
        let toks = lex(src);
        let by_text: Vec<(&str, u32)> = toks.iter().map(|t| (t.text(src), t.line)).collect();
        assert_eq!(by_text[0], ("a", 1));
        assert_eq!(by_text[1], ("b", 2));
        assert_eq!(by_text[2], ("c", 4));
        assert_eq!(by_text[4], ("d", 5)); // after the multi-line comment
    }

    #[test]
    fn ranges_keep_their_dots() {
        assert_eq!(
            kinds("0..10"),
            vec![
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "10"),
            ]
        );
        assert_eq!(kinds("1.5e-3_f64"), vec![(TokenKind::Number, "1.5e-3_f64")]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b'", "r#"] {
            let _ = lex(src); // must terminate without panicking
        }
    }

    /// Concatenating spans + gaps reconstructs the source exactly.
    #[test]
    fn spans_tile_the_input() {
        let src = "fn f<'a>(x: &'a str) -> u32 { x.len() as u32 /* ok */ }";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert!(src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()));
            pos = t.end;
        }
        assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));
    }
}
