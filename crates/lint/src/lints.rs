//! The lint passes. Each is a pure function from [`Workspace`] to
//! findings; waiver filtering happens centrally in [`crate::run`].

use crate::manifest;
use crate::source::{FileKind, SourceFile, Workspace};
use crate::Finding;

/// Workspace-relative path of the fingerprint exemption table.
pub const EXEMPTIONS_PATH: &str = "crates/lint/fingerprint_exemptions.txt";

/// The config structs whose every field must join the result
/// fingerprint (or be exempted in writing).
const FINGERPRINTED_STRUCTS: &[&str] = &[
    "EngineConfig",
    "ShareConfig",
    "SolverOptions",
    "MapperConfig",
];

/// Where the fingerprint lives.
const FINGERPRINT_FILE: &str = "crates/engine/src/fingerprint.rs";

/// Indices of a file's non-comment tokens, in order.
fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect()
}

/// Is this a file whose *runtime* code the discipline lints police?
fn is_runtime(file: &SourceFile) -> bool {
    matches!(file.kind, FileKind::Lib | FileKind::Bin)
}

/// **lock-discipline** — `.lock().unwrap()` / `.lock().expect(…)` turn
/// one panicking thread into a permanently poisoned mutex; every lock
/// site must recover via `PoisonError::into_inner` instead.
pub fn lock_discipline(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in ws.files.iter().filter(|f| is_runtime(f)) {
        let code = code_indices(file);
        for w in code.windows(7) {
            let t = |k: usize| file.tokens[w[k]].text(&file.text);
            let consumer = t(5);
            let is_violation = t(0) == "."
                && t(1) == "lock"
                && t(2) == "("
                && t(3) == ")"
                && t(4) == "."
                && (consumer == "unwrap" || consumer == "expect")
                && t(6) == "(";
            if !is_violation {
                continue;
            }
            let line = file.tokens[w[5]].line;
            if file.in_test_region(line) {
                continue;
            }
            out.push(Finding {
                lint: "lock-discipline",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    ".lock().{consumer}(…) propagates poison; recover it with \
                     `.lock().unwrap_or_else(PoisonError::into_inner)` (or a helper wrapping it)"
                ),
            });
        }
        // `.expect("… poisoned")` after wait_timeout/into_inner/etc. —
        // anything that *names* poison is propagating it instead of
        // recovering.
        for ci in 0..code.len().saturating_sub(3) {
            let t = |k: usize| file.tokens[code[ci + k]].text(&file.text);
            let is_violation = t(0) == "."
                && t(1) == "expect"
                && t(2) == "("
                && file.tokens[code[ci + 3]].kind == crate::lexer::TokenKind::Str
                && t(3).to_ascii_lowercase().contains("poison");
            if !is_violation {
                continue;
            }
            // `.lock().expect("… poisoned")` is already reported above.
            let after_lock = ci >= 3
                && file.tokens[code[ci - 1]].text(&file.text) == ")"
                && file.tokens[code[ci - 2]].text(&file.text) == "("
                && file.tokens[code[ci - 3]].text(&file.text) == "lock";
            if after_lock {
                continue;
            }
            let line = file.tokens[code[ci + 1]].line;
            if file.in_test_region(line) {
                continue;
            }
            out.push(Finding {
                lint: "lock-discipline",
                file: file.rel_path.clone(),
                line,
                message: ".expect(\"… poison …\") propagates poison; recover it with \
                          `unwrap_or_else(PoisonError::into_inner)` instead"
                    .to_string(),
            });
        }
    }
    out
}

/// **log-discipline** — `eprintln!`/`println!` bypass the `obs` logger
/// (filtering, targets, capture in tests). Library code must use
/// `obs::log!`; bins keep `println!` because stdout *is* their result
/// contract, but stderr diagnostics in bins need a waiver.
pub fn log_discipline(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in ws.files.iter().filter(|f| is_runtime(f)) {
        if file.crate_name == "obs" {
            continue; // the logger's own backend writes to stderr
        }
        let code = code_indices(file);
        for w in code.windows(2) {
            let name = file.tokens[w[0]].text(&file.text);
            if !(name == "eprintln" || name == "println")
                || file.tokens[w[1]].text(&file.text) != "!"
            {
                continue;
            }
            let line = file.tokens[w[0]].line;
            if file.in_test_region(line) {
                continue;
            }
            if file.kind == FileKind::Bin && name == "println" {
                continue; // stdout is the user-facing result channel
            }
            let advice = if file.kind == FileKind::Bin {
                "route diagnostics through obs::log! (error!/warn!/info!), or waive where \
                 stderr is the documented contract"
            } else {
                "library code logs through obs::log! so filtering and capture apply"
            };
            out.push(Finding {
                lint: "log-discipline",
                file: file.rel_path.clone(),
                line,
                message: format!("{name}! outside the logger: {advice}"),
            });
        }
    }
    out
}

/// Extracts `(field, line)` pairs from `struct <name> { … }` in `file`,
/// or `None` when the struct isn't defined there (or is tuple/unit).
fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let code = code_indices(file);
    let t = |k: usize| file.tokens[code[k]].text(&file.text);
    let def = (0..code.len().saturating_sub(1)).find(|&i| t(i) == "struct" && t(i + 1) == name)?;
    // Walk to the opening brace; `;` or `(` first means unit/tuple.
    let mut i = def + 2;
    while i < code.len() && !matches!(t(i), "{" | ";" | "(") {
        i += 1;
    }
    if i >= code.len() || t(i) != "{" {
        return None;
    }
    let mut fields = Vec::new();
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < code.len() && depth > 0 {
        match t(j) {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {
                // A field is `ident :` (not `::`) at depth 1, preceded
                // by `{`, `,`, `pub`, `)` (pub(crate)), or `]` (attr).
                let is_field = depth == 1
                    && file.tokens[code[j]].kind == crate::lexer::TokenKind::Ident
                    && j + 2 < code.len()
                    && t(j + 1) == ":"
                    && t(j + 2) != ":"
                    && matches!(t(j - 1), "{" | "," | "pub" | ")" | "]");
                if is_field {
                    fields.push((t(j).to_string(), file.tokens[code[j]].line));
                }
            }
        }
        j += 1;
    }
    Some(fields)
}

/// **fingerprint-completeness** — a config knob that changes results
/// but never joins the fingerprint silently corrupts the persistent
/// cache. Every field of the tracked structs must be referenced in
/// `fingerprint.rs` or carry a written exemption.
pub fn fingerprint_completeness(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    // Exemption table: `Struct.field -- reason` per line.
    let mut exempt = Vec::new();
    if let Some(text) = &ws.exemptions_text {
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_once(" -- ") {
                Some((key, reason)) if !reason.trim().is_empty() => {
                    exempt.push(key.trim().to_string());
                }
                _ => out.push(Finding {
                    lint: "fingerprint-completeness",
                    file: EXEMPTIONS_PATH.to_string(),
                    line: (idx + 1) as u32,
                    message: "malformed exemption; the form is `Struct.field -- <reason>`"
                        .to_string(),
                }),
            }
        }
    }
    let fingerprint_idents: Option<std::collections::HashSet<&str>> =
        ws.file(FINGERPRINT_FILE).map(|f| {
            f.tokens
                .iter()
                .filter(|t| {
                    t.kind == crate::lexer::TokenKind::Ident
                        && !t.is_comment()
                        && !f.in_test_region(t.line)
                })
                .map(|t| t.text(&f.text))
                .collect()
        });
    for file in &ws.files {
        for &name in FINGERPRINTED_STRUCTS {
            let Some(fields) = struct_fields(file, name) else {
                continue;
            };
            let Some(idents) = &fingerprint_idents else {
                out.push(Finding {
                    lint: "fingerprint-completeness",
                    file: file.rel_path.clone(),
                    line: 1,
                    message: format!(
                        "{name} is tracked but {FINGERPRINT_FILE} is missing from the workspace"
                    ),
                });
                continue;
            };
            for (field, line) in fields {
                if idents.contains(field.as_str())
                    || exempt.iter().any(|e| e == &format!("{name}.{field}"))
                {
                    continue;
                }
                out.push(Finding {
                    lint: "fingerprint-completeness",
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "{name}.{field} joins neither the fingerprint ({FINGERPRINT_FILE}) nor \
                         the exemption table ({EXEMPTIONS_PATH}); fingerprint it or record why \
                         it is result-neutral"
                    ),
                });
            }
        }
    }
    out
}

/// **format-version** — the persist/wire encoders' code tokens are
/// hash-pinned to `FORMAT_VERSION` in a committed manifest; a
/// functional edit without a version bump (or a bump without a manifest
/// regeneration) is an error. See [`crate::manifest`].
pub fn format_version(ws: &Workspace) -> Vec<Finding> {
    let finding = |file: &str, message: String| Finding {
        lint: "format-version",
        file: file.to_string(),
        line: 1,
        message,
    };
    let computed = match manifest::compute(ws) {
        Ok(Some(m)) => m,
        Ok(None) => return Vec::new(), // no pinned files in this workspace
        Err(e) => return vec![finding(manifest::HASHED_FILES[0], e)],
    };
    let Some(text) = &ws.manifest_text else {
        return vec![finding(
            manifest::MANIFEST_PATH,
            "format manifest missing; run `cargo run -p satmapit-lint -- --update-manifest` \
             and commit it"
                .to_string(),
        )];
    };
    let committed = match manifest::Manifest::parse(text) {
        Ok(m) => m,
        Err(e) => {
            return vec![finding(
                manifest::MANIFEST_PATH,
                format!("unparseable: {e}"),
            )]
        }
    };
    if committed == computed {
        return Vec::new();
    }
    if committed.version == computed.version {
        let changed: Vec<&str> = computed
            .files
            .iter()
            .filter(|(path, hash)| {
                committed
                    .files
                    .iter()
                    .find(|(p, _)| p == path)
                    .is_none_or(|(_, h)| h != hash)
            })
            .map(|(path, _)| path.as_str())
            .collect();
        vec![finding(
            manifest::MANIFEST_PATH,
            format!(
                "encoder source changed ({}) without a FORMAT_VERSION bump; bump the version \
                 in {} and regenerate with `--update-manifest`",
                changed.join(", "),
                manifest::HASHED_FILES[0],
            ),
        )]
    } else {
        vec![finding(
            manifest::MANIFEST_PATH,
            format!(
                "FORMAT_VERSION is now {} but the manifest records {}; regenerate with \
                 `cargo run -p satmapit-lint -- --update-manifest` and commit it",
                computed.version, committed.version,
            ),
        )]
    }
}

/// **unsafe-gate** — every crate root (lib and bin) keeps
/// `#![forbid(unsafe_code)]`, so an `unsafe` block can only arrive with
/// a visible gate removal in the diff.
pub fn unsafe_gate(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let p = file.rel_path.as_str();
        let is_root = p.ends_with("src/lib.rs")
            || p.ends_with("src/main.rs")
            || ((p.contains("/src/bin/") || p.starts_with("src/bin/")) && p.ends_with(".rs"));
        if !is_root {
            continue;
        }
        let code = code_indices(file);
        let t = |k: usize| file.tokens[code[k]].text(&file.text);
        let has_gate = (0..code.len().saturating_sub(7)).any(|i| {
            t(i) == "#"
                && t(i + 1) == "!"
                && t(i + 2) == "["
                && t(i + 3) == "forbid"
                && t(i + 4) == "("
                && t(i + 5) == "unsafe_code"
                && t(i + 6) == ")"
                && t(i + 7) == "]"
        });
        if !has_gate {
            out.push(Finding {
                lint: "unsafe-gate",
                file: file.rel_path.clone(),
                line: 1,
                message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    out
}

/// The atomic `Ordering` variants (so `cmp::Ordering::Less` never
/// trips the lint).
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// **atomic-ordering** — memory-ordering choices are load-bearing and
/// unreviewable without a written reason. Every `Ordering::<variant>`
/// use needs an adjacent comment containing `ordering:` — trailing on
/// the same line, or above within the same statement.
pub fn atomic_ordering(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in ws.files.iter().filter(|f| is_runtime(f)) {
        let code = code_indices(file);
        for w in code.windows(4) {
            let t = |k: usize| file.tokens[w[k]].text(&file.text);
            let is_use =
                t(0) == "Ordering" && t(1) == ":" && t(2) == ":" && ATOMIC_VARIANTS.contains(&t(3));
            if !is_use {
                continue;
            }
            let line = file.tokens[w[0]].line;
            if file.in_test_region(line) {
                continue;
            }
            if justified(file, w[0], file.tokens[w[3]].line) {
                continue;
            }
            out.push(Finding {
                lint: "atomic-ordering",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "Ordering::{} without a `// ordering:` justification adjacent to the use",
                    t(3)
                ),
            });
        }
    }
    out
}

/// Does a `// ordering:` comment justify the `Ordering` token at raw
/// index `at` (whose variant ends on `end_line`)?
fn justified(file: &SourceFile, at: usize, end_line: u32) -> bool {
    let has_tag = |i: usize| file.tokens[i].text(&file.text).contains("ordering:");
    // Trailing comment on either line of the (possibly wrapped) use.
    let same_line = file.tokens.iter().enumerate().any(|(i, t)| {
        t.is_comment() && (t.line == file.tokens[at].line || t.line == end_line) && has_tag(i)
    });
    if same_line {
        return true;
    }
    // Backward scan: through the rest of the statement, then past one
    // statement boundary as long as only comments intervene.
    let mut crossed = false;
    for i in (0..at).rev() {
        let token = &file.tokens[i];
        if token.is_comment() {
            if has_tag(i) {
                return true;
            }
        } else if matches!(token.text(&file.text), ";" | "{" | "}") {
            if crossed {
                return false;
            }
            crossed = true;
        } else if crossed {
            return false;
        }
    }
    false
}
