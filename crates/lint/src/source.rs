//! The workspace model: which `.rs` files exist, what role each plays,
//! where its `#[cfg(test)]` regions are, and which findings its waiver
//! comments suppress.

use crate::lexer::{self, Token};
use std::path::{Path, PathBuf};

/// The role a source file plays — lints scope themselves by it (library
/// code is held to stricter discipline than a test or an example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — the strictest scope.
    Lib,
    /// A binary target (`src/bin/…`) — stdout/stderr are user surface.
    Bin,
    /// An example under `examples/`.
    Example,
    /// An integration test under `tests/`.
    Test,
    /// A benchmark under `benches/`.
    Bench,
    /// A crate-root `build.rs`.
    BuildScript,
}

/// An in-source waiver: `// lint: allow(<name>) -- <reason>`. It
/// suppresses findings of `<name>` on its own line and the next one, so
/// it can trail the flagged line or sit directly above it.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment starts on.
    pub line: u32,
    /// The waived lint's name.
    pub lint: String,
    /// The justification text after `--`.
    pub reason: String,
}

/// A malformed waiver comment — reported as a finding in its own right,
/// because a waiver that silently fails to parse would un-suppress (or
/// worse, appear to suppress) a real violation.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    /// Line of the malformed comment.
    pub line: u32,
    /// What's wrong with it.
    pub problem: String,
}

/// One lexed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The file's role.
    pub kind: FileKind,
    /// The crate directory name (`engine`, `sat`, …; `root` for the
    /// top-level package).
    pub crate_name: String,
    /// The raw source.
    pub text: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Waiver comments that failed to parse.
    pub bad_waivers: Vec<BadWaiver>,
    /// Inclusive line ranges of `#[cfg(test)] mod … { … }` bodies.
    pub test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a file from in-memory source (the unit-test entry point;
    /// [`Workspace::load`] uses it for real files).
    pub fn from_source(rel_path: &str, text: String) -> SourceFile {
        let tokens = lexer::lex(&text);
        let (waivers, bad_waivers) = parse_waivers(&text, &tokens);
        let test_regions = find_test_regions(&text, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            kind: classify(rel_path),
            crate_name: crate_of(rel_path),
            text,
            tokens,
            waivers,
            bad_waivers,
            test_regions,
        }
    }

    /// The text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Is `line` inside a `#[cfg(test)]` module body?
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Does a waiver for `lint` cover a finding on `line`?
    pub fn waived(&self, lint: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.lint == lint && (w.line == line || w.line + 1 == line))
    }
}

/// Classifies a workspace-relative path into a [`FileKind`].
fn classify(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.contains("/tests/") || p.starts_with("tests/") {
        FileKind::Test
    } else if p.contains("/benches/") || p.starts_with("benches/") {
        FileKind::Bench
    } else if p.contains("/examples/") || p.starts_with("examples/") {
        FileKind::Example
    } else if p.contains("/src/bin/") || p.starts_with("src/bin/") || p.ends_with("src/main.rs") {
        FileKind::Bin
    } else if p.ends_with("/build.rs") && !p.contains("/src/") {
        FileKind::BuildScript
    } else {
        FileKind::Lib
    }
}

/// The crate a path belongs to (`crates/<name>/…` ⇒ `<name>`; anything
/// else is the root package).
fn crate_of(rel_path: &str) -> String {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Scans comment tokens for `lint: allow(<name>) -- <reason>`.
fn parse_waivers(src: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for token in tokens.iter().filter(|t| t.is_comment()) {
        let text = token.text(src);
        // A waiver comment *starts* with the directive (after the
        // comment opener); prose that merely quotes the syntax — e.g.
        // this crate's own docs — is not one.
        let content = text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        if !content.starts_with("lint: allow") {
            continue;
        }
        let rest = &content["lint: allow".len()..];
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let name = rest[..close].trim();
            if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
                return None;
            }
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix("--")?.trim();
            // Block comments: the reason must not be just the closer.
            let reason = reason.strip_suffix("*/").unwrap_or(reason).trim();
            if reason.is_empty() {
                return None;
            }
            Some((name.to_string(), reason.to_string()))
        })();
        match parsed {
            Some((lint, reason)) => waivers.push(Waiver {
                line: token.line,
                lint,
                reason,
            }),
            None => bad.push(BadWaiver {
                line: token.line,
                problem: "malformed waiver; the form is `// lint: allow(<name>) -- <reason>` \
                          with a non-empty reason"
                    .to_string(),
            }),
        }
    }
    (waivers, bad)
}

/// Finds `#[cfg(test)] mod name { … }` bodies by token scanning: the
/// attribute, any further attributes, `mod`, an identifier, then the
/// brace-matched block. Returns inclusive line ranges.
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let text = |i: usize| code[i].1.text(src);
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        // `# [ cfg ( test ) ]`
        let is_cfg_test = text(i) == "#"
            && text(i + 1) == "["
            && text(i + 2) == "cfg"
            && text(i + 3) == "("
            && text(i + 4) == "test"
            && text(i + 5) == ")"
            && text(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while j + 1 < code.len() && text(j) == "#" && text(j + 1) == "[" {
            let mut depth = 0i32;
            j += 1; // at '['
            while j < code.len() {
                match text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `mod <name> {`
        if j + 2 < code.len() && text(j) == "mod" && text(j + 2) == "{" {
            let open = j + 2;
            let mut depth = 0i32;
            let mut k = open;
            while k < code.len() {
                match text(k) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end_line = if k < code.len() {
                code[k].1.line
            } else {
                u32::MAX // unbalanced braces: treat the rest as test
            };
            // The region starts at the `#[cfg(test)]` attribute itself,
            // so the attribute tokens don't leak into format hashing.
            regions.push((code[i].1.line, end_line));
            i = k.min(code.len() - 1) + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// The whole workspace: every lintable `.rs` file, lexed and classified.
#[derive(Debug)]
pub struct Workspace {
    /// The absolute root the relative paths hang off.
    pub root: PathBuf,
    /// Every collected file, in sorted path order (deterministic
    /// reports).
    pub files: Vec<SourceFile>,
    /// The committed format manifest, when present on disk.
    pub manifest_text: Option<String>,
    /// The committed fingerprint exemption table, when present on disk.
    pub exemptions_text: Option<String>,
}

/// Directories never descended into: build output, vendored stand-ins
/// (not this project's invariants), VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", ".github", "node_modules"];

impl Workspace {
    /// Loads every `.rs` file under `root`, skipping `SKIP_DIRS`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an unreadable tree is a hard error
    /// (silently linting half a workspace would defeat the point).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        collect(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in paths {
            let text = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::from_source(&rel, text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifest_text: std::fs::read_to_string(root.join(crate::manifest::MANIFEST_PATH)).ok(),
            exemptions_text: std::fs::read_to_string(root.join(crate::lints::EXEMPTIONS_PATH)).ok(),
        })
    }

    /// A workspace assembled from in-memory sources (for lint tests).
    pub fn from_sources(sources: Vec<(&str, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(path, text)| SourceFile::from_source(path, text))
            .collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: PathBuf::new(),
            files,
            manifest_text: None,
            exemptions_text: None,
        }
    }

    /// The file at exactly `rel_path`, if collected.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths live under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/engine/src/batch.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(classify("src/bin/satmapit.rs"), FileKind::Bin);
        assert_eq!(classify("crates/sat/tests/gc.rs"), FileKind::Test);
        assert_eq!(classify("tests/pipeline.rs"), FileKind::Test);
        assert_eq!(classify("examples/mesh_sweep.rs"), FileKind::Example);
        assert_eq!(classify("crates/bench/benches/micro.rs"), FileKind::Bench);
        assert_eq!(classify("crates/service/build.rs"), FileKind::BuildScript);
        assert_eq!(crate_of("crates/engine/src/batch.rs"), "engine");
        assert_eq!(crate_of("src/bin/satmapit.rs"), "root");
    }

    #[test]
    fn waiver_parsing() {
        let file = SourceFile::from_source(
            "crates/x/src/lib.rs",
            "// lint: allow(lock-discipline) -- single-field mutation, coherent\n\
             fn a() {}\n\
             fn b() {} // lint: allow(log-discipline) -- stderr is the contract\n\
             // lint: allow(lock-discipline)\n\
             // lint: allow() -- nameless\n"
                .to_string(),
        );
        assert_eq!(file.waivers.len(), 2);
        assert!(file.waived("lock-discipline", 1));
        assert!(file.waived("lock-discipline", 2), "covers the next line");
        assert!(!file.waived("lock-discipline", 3));
        assert!(file.waived("log-discipline", 3));
        assert_eq!(file.bad_waivers.len(), 2, "missing reason / missing name");
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   #[allow(dead_code)]\n\
                   mod tests {\n\
                   fn inner() {}\n\
                   }\n\
                   fn also_live() {}\n";
        let file = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        assert_eq!(file.test_regions, vec![(2, 6)]);
        assert!(!file.in_test_region(1));
        assert!(file.in_test_region(5));
        assert!(!file.in_test_region(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(feature = \"x\")]\nmod gated { fn f() {} }\n";
        let file = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        assert!(file.test_regions.is_empty());
    }
}
