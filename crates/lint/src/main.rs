//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p satmapit-lint --                    # report findings (exit 0)
//! cargo run -p satmapit-lint -- --deny-all         # findings are fatal (CI)
//! cargo run -p satmapit-lint -- --update-manifest  # re-pin the format manifest
//! cargo run -p satmapit-lint -- --list             # list lints
//! ```

#![forbid(unsafe_code)]

use satmapit_lint::source::Workspace;
use satmapit_lint::{manifest, run, LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: satmapit-lint [--root <dir>] [--deny-all | --update-manifest | --list]\n\
     \n\
     --root <dir>       workspace root (default: this crate's ../..)\n\
     --deny-all         exit non-zero when any finding survives waivers\n\
     --update-manifest  rewrite crates/lint/format_manifest.txt from the tree\n\
     --list             print every lint name and description"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut deny_all = false;
    let mut update_manifest = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    // lint: allow(log-discipline) -- usage errors are stderr's contract
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--update-manifest" => update_manifest = true,
            "--list" => {
                for (name, description) in LINTS {
                    println!("{name:26} {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                // lint: allow(log-discipline) -- usage errors are stderr's contract
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            // lint: allow(log-discipline) -- fatal I/O errors are stderr's contract
            eprintln!("failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_manifest {
        return match manifest::compute(&ws) {
            Ok(Some(m)) => {
                let path = root.join(manifest::MANIFEST_PATH);
                if let Err(e) = std::fs::write(&path, m.render()) {
                    // lint: allow(log-discipline) -- fatal I/O errors are stderr's contract
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "pinned {} file(s) to FORMAT_VERSION {} in {}",
                    m.files.len(),
                    m.version,
                    manifest::MANIFEST_PATH
                );
                ExitCode::SUCCESS
            }
            Ok(None) => {
                // lint: allow(log-discipline) -- fatal errors are stderr's contract
                eprintln!("no pinned files found under {}", root.display());
                ExitCode::from(2)
            }
            Err(e) => {
                // lint: allow(log-discipline) -- fatal errors are stderr's contract
                eprintln!("cannot compute manifest: {e}");
                ExitCode::from(2)
            }
        };
    }

    let findings = run(&ws);
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "{} file(s) linted, {} finding(s)",
        ws.files.len(),
        findings.len()
    );
    if deny_all && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
