//! `satmapit-lint` — workspace-invariant static analysis.
//!
//! The repo's hardest regressions have been *invariant drift*, not
//! logic: a `.lock().expect(…)` that wedges the shared engine after one
//! worker panic, a config knob that silently never joins the result
//! fingerprint, a persist encoder edited without a `FORMAT_VERSION`
//! bump. This crate is a dependency-free, token-level analyzer that
//! turns those review-memory rules into named, individually-waivable
//! lints, runnable as `cargo run -p satmapit-lint -- --deny-all` and as
//! a `cargo test` harness (`tests/workspace_clean.rs`).
//!
//! A violation is suppressed in-source with
//! `// lint: allow(<name>) -- <reason>` on the flagged line or the line
//! above it; malformed waivers are themselves findings. See
//! `docs/lint.md` for each lint's rationale and the exemption process.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod source;

use source::Workspace;

/// One lint violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired (a name from [`LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// What's wrong and how to fix or waive it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Every shipped lint, as `(name, one-line description)` — the names
/// are what waivers reference.
pub const LINTS: &[(&str, &str)] = &[
    (
        "lock-discipline",
        "no .lock().unwrap()/.lock().expect(); recover poison via PoisonError::into_inner",
    ),
    (
        "log-discipline",
        "eprintln!/println! forbidden outside crates/obs, bins, and tests; use obs::log!",
    ),
    (
        "fingerprint-completeness",
        "every EngineConfig/ShareConfig/SolverOptions/MapperConfig field joins the result \
         fingerprint or carries a written exemption",
    ),
    (
        "format-version",
        "persist/wire encoder source is hash-pinned to FORMAT_VERSION; edits require a bump \
         plus a manifest regeneration",
    ),
    (
        "unsafe-gate",
        "every crate root keeps #![forbid(unsafe_code)]",
    ),
    (
        "atomic-ordering",
        "every atomic Ordering:: use carries an adjacent `// ordering:` justification",
    ),
    (
        "waiver-syntax",
        "waiver comments must parse as `lint: allow(<name>) -- <reason>`",
    ),
];

/// Runs every lint over the workspace, drops waived findings, and
/// returns the rest sorted by (file, line, lint).
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(lints::lock_discipline(ws));
    findings.extend(lints::log_discipline(ws));
    findings.extend(lints::fingerprint_completeness(ws));
    findings.extend(lints::format_version(ws));
    findings.extend(lints::unsafe_gate(ws));
    findings.extend(lints::atomic_ordering(ws));
    for file in &ws.files {
        for bad in &file.bad_waivers {
            findings.push(Finding {
                lint: "waiver-syntax",
                file: file.rel_path.clone(),
                line: bad.line,
                message: bad.problem.clone(),
            });
        }
    }
    // Waivers suppress every lint except the one policing waivers
    // themselves (a broken waiver can't vouch for itself).
    findings.retain(|f| {
        f.lint == "waiver-syntax" || !ws.file(&f.file).is_some_and(|sf| sf.waived(f.lint, f.line))
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    findings
}
