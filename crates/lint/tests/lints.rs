//! Per-lint fixture coverage: each lint must fire on a seeded violation,
//! stay quiet on the compliant spelling, and honour (or, for
//! waiver-syntax, refuse to honour) in-source waivers.

use satmapit_lint::manifest;
use satmapit_lint::source::Workspace;
use satmapit_lint::{run, Finding, LINTS};

/// A one-library-file workspace, with the crate root's unsafe gate in
/// place so only the lint under test fires.
fn lib_ws(src: &str) -> Workspace {
    Workspace::from_sources(vec![(
        "crates/x/src/lib.rs",
        format!("#![forbid(unsafe_code)]\n{src}"),
    )])
}

fn lints_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = findings.iter().map(|f| f.lint).collect();
    names.dedup();
    names
}

fn assert_only(findings: &[Finding], lint: &str, line: u32) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one {lint} finding, got {findings:#?}"
    );
    assert_eq!(findings[0].lint, lint);
    assert_eq!(findings[0].line, line, "wrong line in {:?}", findings[0]);
}

// ---------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_fires_on_unwrap_and_expect() {
    let ws = lib_ws("fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap();\n}\n");
    assert_only(&run(&ws), "lock-discipline", 3);

    let ws = lib_ws("fn f(m: &M) {\n    let g = m.lock().expect(\"poisoned\");\n}\n");
    // `.lock().expect("poisoned")` matches both patterns' shapes but must
    // be reported exactly once.
    assert_only(&run(&ws), "lock-discipline", 3);
}

#[test]
fn lock_discipline_fires_on_poison_naming_expects() {
    // `.wait_timeout(..).expect("… poisoned")` propagates poison without
    // even a `.lock()` in sight.
    let ws = lib_ws(
        "fn f(cv: &C, g: G) {\n    let (g, _) = cv.wait_timeout(g, d).expect(\"cache lock poisoned\");\n}\n",
    );
    assert_only(&run(&ws), "lock-discipline", 3);
}

#[test]
fn lock_discipline_accepts_poison_recovery() {
    let ws = lib_ws(
        "use std::sync::PoisonError;\n\
         fn f(m: &std::sync::Mutex<u32>) {\n    \
             let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
         }\n",
    );
    assert_eq!(run(&ws), vec![]);
}

#[test]
fn lock_discipline_skips_tests_and_honours_waivers() {
    let ws = lib_ws("#[cfg(test)]\nmod tests {\n    fn f(m: &M) { m.lock().unwrap(); }\n}\n");
    assert_eq!(run(&ws), vec![]);

    let ws = lib_ws(
        "fn f(m: &M) {\n    \
             // lint: allow(lock-discipline) -- single-threaded init path\n    \
             let g = m.lock().unwrap();\n\
         }\n",
    );
    assert_eq!(run(&ws), vec![]);
}

// ------------------------------------------------------------ log-discipline

#[test]
fn log_discipline_polices_lib_and_bin_differently() {
    let ws = lib_ws("fn f() { eprintln!(\"diag\"); }\n");
    assert_only(&run(&ws), "log-discipline", 2);

    let ws = lib_ws("fn f() { println!(\"diag\"); }\n");
    assert_only(&run(&ws), "log-discipline", 2);

    // Bins own stdout (result channel) but not stderr.
    let gate = "#![forbid(unsafe_code)]\n";
    let ws = Workspace::from_sources(vec![(
        "src/bin/tool.rs",
        format!("{gate}fn main() {{ println!(\"result\"); }}\n"),
    )]);
    assert_eq!(run(&ws), vec![]);

    let ws = Workspace::from_sources(vec![(
        "src/bin/tool.rs",
        format!("{gate}fn main() {{ eprintln!(\"diag\"); }}\n"),
    )]);
    assert_only(&run(&ws), "log-discipline", 2);
}

#[test]
fn log_discipline_exempts_obs_tests_and_strings() {
    let ws = Workspace::from_sources(vec![(
        "crates/obs/src/log.rs",
        "fn backend() { eprintln!(\"the logger itself\"); }\n".to_string(),
    )]);
    assert_eq!(run(&ws), vec![]);

    let ws = Workspace::from_sources(vec![(
        "tests/e2e.rs",
        "fn f() { eprintln!(\"test diag\"); }\n".to_string(),
    )]);
    assert_eq!(run(&ws), vec![]);

    // The token `eprintln!` inside a string literal is not a call.
    let ws = lib_ws("fn f() -> &'static str { \"eprintln!(no)\" }\n");
    assert_eq!(run(&ws), vec![]);
}

// -------------------------------------------------- fingerprint-completeness

fn fingerprint_ws(fingerprint_body: &str, exemptions: Option<&str>) -> Workspace {
    let mut ws = Workspace::from_sources(vec![
        (
            "crates/engine/src/lib.rs",
            "#![forbid(unsafe_code)]\npub struct EngineConfig {\n    pub workers: usize,\n    pub seed: u64,\n}\n"
                .to_string(),
        ),
        (
            "crates/engine/src/fingerprint.rs",
            format!("pub fn fingerprint(c: &EngineConfig) -> u64 {{\n    {fingerprint_body}\n}}\n"),
        ),
    ]);
    ws.exemptions_text = exemptions.map(str::to_string);
    ws
}

#[test]
fn fingerprint_completeness_flags_untracked_fields() {
    // `workers` is hashed, `seed` is neither hashed nor exempted.
    let findings = run(&fingerprint_ws("hash(c.workers)", None));
    assert_only(&findings, "fingerprint-completeness", 4);
    assert!(findings[0].message.contains("EngineConfig.seed"));
}

#[test]
fn fingerprint_completeness_accepts_hash_or_exemption() {
    let ws = fingerprint_ws("hash(c.workers) ^ hash(c.seed)", None);
    assert_eq!(run(&ws), vec![]);

    let ws = fingerprint_ws(
        "hash(c.workers)",
        Some("EngineConfig.seed -- seeds only permute the search, agreement-tested\n"),
    );
    assert_eq!(run(&ws), vec![]);
}

#[test]
fn fingerprint_completeness_rejects_malformed_exemptions() {
    let ws = fingerprint_ws(
        "hash(c.workers) ^ hash(c.seed)",
        Some("EngineConfig.seed reasonless entry\n"),
    );
    let findings = run(&ws);
    assert_only(&findings, "fingerprint-completeness", 1);
    assert!(findings[0].message.contains("malformed exemption"));
}

// ------------------------------------------------------------ format-version

fn persist_ws(version: u32, body: &str, manifest_text: Option<String>) -> Workspace {
    let mut ws = Workspace::from_sources(vec![(
        "crates/engine/src/persist.rs",
        format!("#![forbid(unsafe_code)]\npub const FORMAT_VERSION: u32 = {version};\n{body}\n"),
    )]);
    ws.manifest_text = manifest_text;
    ws
}

#[test]
fn format_version_requires_a_manifest() {
    let findings = run(&persist_ws(3, "fn encode() {}", None));
    assert_only(&findings, "format-version", 1);
    assert!(findings[0].message.contains("manifest missing"));
}

#[test]
fn format_version_accepts_a_matching_manifest() {
    let ws = persist_ws(3, "fn encode() {}", None);
    let manifest = manifest::compute(&ws).unwrap().unwrap().render();
    let ws = persist_ws(3, "fn encode() {}", Some(manifest));
    assert_eq!(run(&ws), vec![]);
}

#[test]
fn format_version_catches_encoder_edits_without_a_bump() {
    let ws = persist_ws(3, "fn encode() {}", None);
    let manifest_text = manifest::compute(&ws).unwrap().unwrap().render();

    // A functional edit with the same version: flagged.
    let edited = persist_ws(3, "fn encode() { let x = 1; }", Some(manifest_text.clone()));
    let findings = run(&edited);
    assert_only(&findings, "format-version", 1);
    assert!(findings[0]
        .message
        .contains("without a FORMAT_VERSION bump"));

    // Comment-only churn: not a functional edit, no finding.
    let commented = persist_ws(
        3,
        "// richer docs\nfn encode() {}",
        Some(manifest_text.clone()),
    );
    assert_eq!(run(&commented), vec![]);

    // A bump without regenerating the manifest: flagged the other way.
    let bumped = persist_ws(4, "fn encode() { let x = 1; }", Some(manifest_text));
    let findings = run(&bumped);
    assert_only(&findings, "format-version", 1);
    assert!(findings[0].message.contains("FORMAT_VERSION is now 4"));

    // Bump plus regeneration: clean.
    let bumped = persist_ws(4, "fn encode() { let x = 1; }", None);
    let regenerated = manifest::compute(&bumped).unwrap().unwrap().render();
    let bumped = persist_ws(4, "fn encode() { let x = 1; }", Some(regenerated));
    assert_eq!(run(&bumped), vec![]);
}

// -------------------------------------------------------------- unsafe-gate

#[test]
fn unsafe_gate_requires_forbid_on_crate_roots() {
    let ws = Workspace::from_sources(vec![("crates/x/src/lib.rs", "pub fn f() {}\n".to_string())]);
    assert_only(&run(&ws), "unsafe-gate", 1);

    let ws = lib_ws("pub fn f() {}\n");
    assert_eq!(run(&ws), vec![]);

    // Non-root modules carry the crate root's gate already.
    let ws = Workspace::from_sources(vec![(
        "crates/x/src/helper.rs",
        "pub fn f() {}\n".to_string(),
    )]);
    assert_eq!(run(&ws), vec![]);
}

// ---------------------------------------------------------- atomic-ordering

#[test]
fn atomic_ordering_requires_a_written_reason() {
    let ws = lib_ws("fn f(c: &A) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n");
    assert_only(&run(&ws), "atomic-ordering", 3);

    // Trailing justification on the use line.
    let ws = lib_ws(
        "fn f(c: &A) -> u64 {\n    \
             c.load(Ordering::Relaxed) // ordering: monotone counter, advisory read\n\
         }\n",
    );
    assert_eq!(run(&ws), vec![]);

    // A justification above the statement also counts.
    let ws = lib_ws(
        "fn f(c: &A) -> u64 {\n    \
             // ordering: monotone counter, advisory read\n    \
             c.load(Ordering::Relaxed)\n\
         }\n",
    );
    assert_eq!(run(&ws), vec![]);
}

#[test]
fn atomic_ordering_justification_does_not_leak_across_statements() {
    // The comment vouches for the first statement only; a second
    // statement later cannot ride on it.
    let ws = lib_ws(
        "fn f(c: &A) {\n    \
             // ordering: covers only the next statement\n    \
             let a = c.load(Ordering::Relaxed);\n    \
             let b = other();\n    \
             let c2 = c.load(Ordering::Relaxed);\n\
         }\n",
    );
    assert_only(&run(&ws), "atomic-ordering", 6);
}

#[test]
fn atomic_ordering_ignores_cmp_ordering() {
    let ws =
        lib_ws("fn f(a: u32, b: u32) -> cmp::Ordering {\n    cmp::Ordering::Less.reverse()\n}\n");
    assert_eq!(run(&ws), vec![]);
}

// ------------------------------------------------------------ waiver-syntax

#[test]
fn malformed_waivers_are_findings_and_cannot_vouch_for_themselves() {
    // Missing reason.
    let ws = lib_ws("// lint: allow(lock-discipline)\nfn f() {}\n");
    let findings = run(&ws);
    assert_only(&findings, "waiver-syntax", 2);

    // A well-formed waiver for `waiver-syntax` cannot suppress a broken
    // waiver next to it.
    let ws = lib_ws(
        "// lint: allow(waiver-syntax) -- trying to hide the next line\n\
         // lint: allow(lock-discipline)\n\
         fn f() {}\n",
    );
    assert_only(&run(&ws), "waiver-syntax", 3);
}

#[test]
fn waivers_only_suppress_their_named_lint_nearby() {
    // Wrong lint name: the violation still fires.
    let ws = lib_ws(
        "fn f(m: &M) {\n    \
             // lint: allow(log-discipline) -- wrong name\n    \
             let g = m.lock().unwrap();\n\
         }\n",
    );
    assert_only(&run(&ws), "lock-discipline", 4);

    // Too far away (two lines above): the violation still fires.
    let ws = lib_ws(
        "fn f(m: &M) {\n    \
             // lint: allow(lock-discipline) -- too far away\n\n    \
             let g = m.lock().unwrap();\n\
         }\n",
    );
    assert_only(&run(&ws), "lock-discipline", 5);
}

// ------------------------------------------------------------------- meta

#[test]
fn every_shipped_lint_has_a_firing_fixture_in_this_file() {
    // The registry and this test file must not drift apart: collect the
    // lints the fixtures above exercise and compare against LINTS.
    let fired = [
        run(&lib_ws("fn f(m: &M) { m.lock().unwrap(); }\n")),
        run(&lib_ws("fn f() { eprintln!(\"x\"); }\n")),
        run(&fingerprint_ws("0", None)),
        run(&persist_ws(3, "fn encode() {}", None)),
        run(&Workspace::from_sources(vec![(
            "crates/x/src/main.rs",
            "fn main() {}\n".to_string(),
        )])),
        run(&lib_ws("fn f(c: &A) { c.load(Ordering::SeqCst); }\n")),
        run(&lib_ws("// lint: allow(nope)\n")),
    ];
    let mut covered: Vec<&'static str> = fired.iter().flat_map(|f| lints_fired(f)).collect();
    covered.sort_unstable();
    covered.dedup();
    let mut shipped: Vec<&str> = LINTS.iter().map(|(name, _)| *name).collect();
    shipped.sort_unstable();
    assert_eq!(covered, shipped, "a shipped lint has no firing fixture");
}
