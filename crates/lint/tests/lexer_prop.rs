//! Property coverage for the lint lexer: random token soups — including
//! deliberately unterminated literals and comments — must lex without
//! panicking, and the resulting spans must tile the input exactly
//! (every byte outside a token span is whitespace, line numbers agree
//! with a newline count). A second property pins the reason the lexer
//! exists at all: comment markers and API-shaped text inside string
//! literals must never surface as comment or identifier tokens.

use proptest::collection::vec;
use proptest::prelude::*;
use satmapit_lint::lexer::{lex, TokenKind};

/// Building blocks for random sources. The nasty half of the table —
/// unterminated strings, open block comments, stray quotes — may swallow
/// every fragment after it; the tiling and no-panic properties must hold
/// regardless.
const FRAGMENTS: &[&str] = &[
    "fn",
    "x1",
    "_private",
    "r#match",
    "42",
    "0..n",
    "1.5e-3_f64",
    "0xFF_u8",
    "\"plain\"",
    "\"esc \\\" aped\"",
    "b\"bytes\"",
    "c\"cstr\"",
    "r\"raw\"",
    "r#\"one \" deep\"#",
    "br##\"two \"# deep\"##",
    "'x'",
    "'\\n'",
    "'\\''",
    "b'q'",
    "'a",
    "'static",
    "// line comment\n",
    "/* block */",
    "/* nested /* twice */ ok */",
    "::",
    "->",
    "{",
    "}",
    ";",
    ".",
    "&",
    "#",
    "\u{e9}tat", // multi-byte ident bytes
    // The pathological tail: each of these is malformed on purpose.
    "\"never closed",
    "/* never closed",
    "r##\"open",
    "'",
    "b'",
];

const SEPARATORS: &[&str] = &[" ", "\n", "\t", "\n\n  "];

fn build_source(picks: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for &(frag, sep) in picks {
        src.push_str(FRAGMENTS[frag % FRAGMENTS.len()]);
        src.push_str(SEPARATORS[sep % SEPARATORS.len()]);
    }
    src
}

proptest! {
    #[test]
    fn token_soup_spans_tile_the_input(
        picks in vec((0usize..FRAGMENTS.len(), 0usize..SEPARATORS.len()), 0..30)
    ) {
        let src = build_source(&picks);
        let tokens = lex(&src);

        // Spans are in order, within bounds, and non-empty; everything
        // between them (and before/after) is whitespace.
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= pos, "overlapping spans at {}", t.start);
            prop_assert!(t.end > t.start, "empty span at {}", t.start);
            prop_assert!(t.end <= src.len());
            prop_assert!(
                src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()),
                "non-whitespace gap before token at {}: {:?}",
                t.start,
                &src[pos..t.start]
            );
            // Line numbers are exactly 1 + newlines before the span.
            let newlines = src[..t.start].bytes().filter(|&b| b == b'\n').count();
            prop_assert_eq!(t.line as usize, newlines + 1);
            pos = t.end;
        }
        prop_assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));

        // Lexing is deterministic.
        prop_assert_eq!(lex(&src), tokens);
    }

    #[test]
    fn string_contents_are_never_mis_lexed(
        picks in vec(0usize..PAYLOADS.len(), 1..8)
    ) {
        // Embed comment markers, lock-API text and quotes inside one
        // ordinary string literal: the lexer must produce exactly one
        // Str token for it and never a comment or `lock` identifier.
        let payload: String = picks
            .iter()
            .map(|&i| PAYLOADS[i % PAYLOADS.len()])
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!("let s = \"{payload}\";");
        let tokens = lex(&src);

        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1, "exactly one string literal in {:?}", src);
        prop_assert_eq!(strs[0].text(&src), &format!("\"{payload}\""));
        prop_assert!(
            tokens.iter().all(|t| !t.is_comment()),
            "comment token leaked out of a string in {:?}",
            src
        );
        prop_assert!(
            tokens
                .iter()
                .all(|t| t.kind != TokenKind::Ident || t.text(&src) != "lock"),
            "string contents surfaced as an identifier in {:?}",
            src
        );
    }
}

/// Payload fragments for the string-literal property. All are safe to
/// splice between plain double quotes (any `"` or `\` is escaped).
const PAYLOADS: &[&str] = &[
    "// not a comment",
    "/* nor this */",
    "*/ stray closer",
    ".lock().unwrap()",
    ".lock().expect(\\\"poisoned\\\")",
    "eprintln!(\\\"hi\\\")",
    "unsafe",
    "SeqCst",
    "lint: allow(everything)",
    "\\\\ backslash",
    "'a lifetime-ish",
    "text with 'quotes'",
];
