//! The cargo-test face of the linter: `cargo test -p satmapit-lint`
//! fails whenever the real workspace has an unwaived finding, so the
//! invariants hold even for contributors who never run the binary.
//!
//! A second test seeds violations into copies of the real files and
//! checks the lints still fire there — guarding against the silent
//! failure mode where a lint goes blind (bad classification, an
//! over-broad exemption) while the clean-tree test keeps passing.

use satmapit_lint::source::{SourceFile, Workspace};
use satmapit_lint::{run, Finding};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint → crates → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
}

#[test]
fn the_workspace_is_lint_clean() {
    let ws = Workspace::load(workspace_root()).expect("workspace must be readable");
    assert!(
        ws.files.len() > 30,
        "suspiciously few files collected ({}); did the walker break?",
        ws.files.len()
    );
    let findings = run(&ws);
    assert!(
        findings.is_empty(),
        "the tree has unwaived lint findings:\n{}",
        findings
            .iter()
            .map(Finding::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violations_in_real_files_still_fire() {
    // Append a violation of each discipline lint to a *real* runtime
    // file and re-lint: the finding must appear in that file.
    let root = workspace_root();
    let seeds: &[(&str, &str, &str)] = &[
        (
            "crates/engine/src/batch.rs",
            "fn _seeded(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n",
            "lock-discipline",
        ),
        (
            "crates/engine/src/batch.rs",
            "fn _seeded() { eprintln!(\"diag\"); }\n",
            "log-discipline",
        ),
        (
            "crates/service/src/server.rs",
            "fn _seeded(c: &std::sync::atomic::AtomicU64) -> u64 {\n    \
                 c.load(std::sync::atomic::Ordering::SeqCst)\n\
             }\n",
            "atomic-ordering",
        ),
        (
            "crates/engine/src/persist.rs",
            "fn _seeded() {}\n",
            "format-version",
        ),
        // The transport crate is inside the lint perimeter: a bare
        // ordering in the event-loop plumbing fires like anywhere else.
        (
            "crates/net/src/poller.rs",
            "fn _seeded(c: &std::sync::atomic::AtomicU64) -> u64 {\n    \
                 c.load(std::sync::atomic::Ordering::Acquire)\n\
             }\n",
            "atomic-ordering",
        ),
        (
            "crates/net/src/ring.rs",
            "fn _seeded() { eprintln!(\"diag\"); }\n",
            "log-discipline",
        ),
        // The morph backend crate sits inside the lint perimeter like
        // every other runtime crate: its search core polls cooperative
        // stop flags, so the ordering discipline must fire there too.
        (
            "crates/morph/src/search.rs",
            "fn _seeded(c: &std::sync::atomic::AtomicU64) -> u64 {\n    \
                 c.load(std::sync::atomic::Ordering::Relaxed)\n\
             }\n",
            "atomic-ordering",
        ),
        (
            "crates/morph/src/lib.rs",
            "fn _seeded() { eprintln!(\"diag\"); }\n",
            "log-discipline",
        ),
    ];
    for &(rel_path, seed, lint) in seeds {
        let mut ws = Workspace::load(root).expect("workspace must be readable");
        let file = ws
            .file(rel_path)
            .unwrap_or_else(|| panic!("{rel_path} missing"));
        let seeded = format!("{}\n{seed}", file.text);
        ws.files.retain(|f| f.rel_path != rel_path);
        ws.files.push(SourceFile::from_source(rel_path, seeded));
        let fired = run(&ws)
            .into_iter()
            .any(|f| f.lint == lint && (f.file == rel_path || lint == "format-version"));
        assert!(
            fired,
            "seeding {rel_path} with {seed:?} did not fire {lint}"
        );
    }

    // Dropping the unsafe gate from a real crate root must fire too.
    let mut ws = Workspace::load(root).expect("workspace must be readable");
    let rel_path = "crates/engine/src/lib.rs";
    let text = ws
        .file(rel_path)
        .expect("engine crate root exists")
        .text
        .replace("#![forbid(unsafe_code)]", "");
    ws.files.retain(|f| f.rel_path != rel_path);
    ws.files.push(SourceFile::from_source(rel_path, text));
    assert!(
        run(&ws)
            .iter()
            .any(|f| f.lint == "unsafe-gate" && f.file == rel_path),
        "removing the engine's unsafe gate did not fire unsafe-gate"
    );

    // The net crate cannot forbid unsafe (its sys module needs two FFI
    // calls), so it carries an explicit waiver instead; dropping that
    // waiver line must likewise fire.
    let mut ws = Workspace::load(root).expect("workspace must be readable");
    let rel_path = "crates/net/src/lib.rs";
    let text: String = ws
        .file(rel_path)
        .expect("net crate root exists")
        .text
        .lines()
        .filter(|line| !line.contains("lint: allow(unsafe-gate)"))
        .collect::<Vec<_>>()
        .join("\n");
    ws.files.retain(|f| f.rel_path != rel_path);
    ws.files.push(SourceFile::from_source(rel_path, text));
    assert!(
        run(&ws)
            .iter()
            .any(|f| f.lint == "unsafe-gate" && f.file == rel_path),
        "removing the net crate's unsafe-gate waiver did not fire unsafe-gate"
    );
}
