//! Maps the `gsm` saturated-add kernel, executes it on the machine model,
//! and shows the staged modulo schedule plus the memory effects.
//!
//! ```sh
//! cargo run --release --example simulate_mapping
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{codegen, Mapper};
use sat_mapit::kernels;
use sat_mapit::sim::{simulate, verify_mapping};

fn main() {
    let kernel = kernels::by_name("gsm").expect("kernel exists");
    let cgra = Cgra::square(3);
    let mapped = Mapper::new(&kernel.dfg, &cgra)
        .run()
        .result
        .expect("gsm maps on a 3x3");
    println!(
        "`{}` mapped at II={} on {}",
        kernel.name(),
        mapped.ii(),
        cgra
    );

    // The staged schedule (paper Fig. 2b) for a short run.
    println!(
        "\nstaged schedule (4 iterations):\n{}",
        codegen::render_stages(&kernel.dfg, &mapped.mapping, 4)
    );

    // Craft inputs with saturating and non-saturating lanes.
    let mut memory = kernel.memory.clone();
    let inputs: [(i64, i64); 6] = [
        (30_000, 10_000), // saturates high
        (100, 23),
        (-30_000, -9_000), // saturates low
        (7, -7),
        (32_767, 1), // saturates high by one
        (-5, 3),
    ];
    for (j, (a, b)) in inputs.iter().enumerate() {
        memory[j] = *a;
        memory[32 + j] = *b;
    }

    let iterations = inputs.len() as u32;
    let sim = simulate(
        &kernel.dfg,
        &cgra,
        &mapped.mapping,
        &mapped.registers,
        memory.clone(),
        iterations,
    )
    .expect("simulation runs");
    println!("inputs (a, b) -> saturated sum:");
    for (j, (a, b)) in inputs.iter().enumerate() {
        println!("  {a:>7} + {b:>7} -> {:>7}", sim.memory[64 + j]);
    }

    // And the formal check: simulation == reference interpreter.
    verify_mapping(&kernel.dfg, &cgra, &mapped, memory, iterations)
        .expect("mapped gsm computes reference semantics");
    println!("\nverified: mapped code matches the sequential reference ✓");
}
