//! Sweeps one benchmark across the paper's four mesh sizes (2×2 … 5×5)
//! and prints the achieved II and mapping time — one column of Fig. 6.
//!
//! ```sh
//! cargo run --release --example mesh_sweep -- [kernel] [timeout-secs]
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{MapFailure, Mapper};
use sat_mapit::kernels;
use sat_mapit::schedule::mii;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gsm".to_string());
    let timeout: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);

    let kernel = kernels::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`; available: {:?}", kernels::NAMES);
        std::process::exit(1);
    });
    println!(
        "kernel `{}` ({} nodes, {} edges): {}",
        kernel.name(),
        kernel.dfg.num_nodes(),
        kernel.dfg.num_edges(),
        kernel.description
    );
    println!("\n size | MII | II  | time      | IIs tried");
    println!(" -----+-----+-----+-----------+----------");
    for n in 2..=5u16 {
        let cgra = Cgra::square(n);
        let lower = mii(&kernel.dfg, &cgra).expect("suite kernels are mappable");
        let outcome = Mapper::new(&kernel.dfg, &cgra)
            .with_timeout(Duration::from_secs(timeout))
            .run();
        let (ii, note) = match &outcome.result {
            Ok(mapped) => (mapped.ii().to_string(), String::new()),
            Err(MapFailure::Timeout { at_ii }) => ("—".into(), format!("timeout at II={at_ii}")),
            Err(MapFailure::IiCapReached { cap }) => ("—".into(), format!("no II ≤ {cap}")),
            Err(e) => ("—".into(), e.to_string()),
        };
        println!(
            " {n}x{n}  | {lower:>3} | {ii:>3} | {:>8.2?} | {} {note}",
            outcome.elapsed,
            outcome.attempts.len(),
        );
    }
}
