//! Reproduces the paper's running example end to end:
//! Fig. 2a (the DFG), Fig. 4 (ASAP/ALAP/MS), Fig. 5 (KMS at II=3),
//! Fig. 2c (a 2×2 mapping at II=3) and Fig. 2b (prolog/kernel/epilog).
//!
//! ```sh
//! cargo run --release --example paper_example
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{codegen, Mapper};
use sat_mapit::dfg::dot::to_dot;
use sat_mapit::kernels::paper_example;
use sat_mapit::schedule::{mii, Kms, MobilitySchedule};

fn main() {
    let kernel = paper_example();
    let dfg = &kernel.dfg;
    println!("Fig. 2a — the running example as DOT:\n{}", to_dot(dfg));

    // Fig. 4: ASAP / ALAP / mobility schedule. Paper node k = NodeId(k-1).
    let ms = MobilitySchedule::compute(dfg).unwrap();
    println!("Fig. 4 — schedules (paper node numbering):");
    println!("  t | ASAP            | ALAP            | MS");
    for t in 0..ms.len() {
        let fmt = |nodes: Vec<sat_mapit::dfg::NodeId>| {
            nodes
                .iter()
                .map(|n| (n.0 + 1).to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let asap = fmt(dfg.node_ids().filter(|&n| ms.asap(n) == t).collect());
        let alap = fmt(dfg.node_ids().filter(|&n| ms.alap(n) == t).collect());
        let slot = fmt(ms.slot_nodes(t));
        println!("  {t} | {asap:<15} | {alap:<15} | {slot}");
    }

    // Fig. 5: the kernel mobility schedule at II = 3 (2 folds).
    let kms = Kms::build(&ms, 3);
    println!(
        "\nFig. 5 — KMS at II=3 ({} folds), entries `node@fold`:",
        kms.folds()
    );
    for c in 0..kms.ii() {
        let row = kms
            .row(c)
            .iter()
            .map(|(n, f)| format!("{}@{}", n.0 + 1, f))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  cycle {c}: {row}");
    }

    // Fig. 2c: map on a 2x2. ResMII = ceil(11/4) = 3, and the paper's
    // kernel indeed has II = 3.
    let cgra = Cgra::square(2);
    println!(
        "\nmapping on {cgra} (MII = {})...",
        mii(dfg, &cgra).unwrap()
    );
    let outcome = Mapper::new(dfg, &cgra).run();
    let mapped = outcome.result.expect("the paper maps this at II=3");
    assert_eq!(mapped.ii(), 3, "paper Fig. 2 has a 3-cycle kernel");
    let program = codegen::kernel_program(dfg, &cgra, &mapped.mapping, &mapped.registers);
    println!("Fig. 2c — kernel program:\n{program}");

    // Fig. 2b: the staged modulo schedule for 2 iterations (as drawn).
    println!("Fig. 2b — prolog/kernel/epilog for 2 iterations:");
    println!("{}", codegen::render_stages(dfg, &mapped.mapping, 2));
}
