//! Quickstart: map a benchmark loop onto a CGRA, inspect the result, and
//! verify the mapped code by executing it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{codegen, Mapper};
use sat_mapit::kernels;
use sat_mapit::sim::verify_mapping;

fn main() {
    // 1. Pick a loop kernel (srand: the libc LCG) and a 3x3 CGRA with the
    //    paper's defaults: 4-neighbour mesh, 4 registers per PE.
    let kernel = kernels::by_name("srand").expect("kernel exists");
    let cgra = Cgra::square(3);
    println!("kernel `{}`: {}", kernel.name(), kernel.description);
    println!(
        "  {} nodes, {} edges | target: {}",
        kernel.dfg.num_nodes(),
        kernel.dfg.num_edges(),
        cgra
    );

    // 2. Run the SAT-based iterative mapper (paper Fig. 3).
    let outcome = Mapper::new(&kernel.dfg, &cgra).run();
    let mapped = outcome.result.expect("srand is mappable on a 3x3");
    println!(
        "\nmapped at II={} (MII={}) in {:?} after {} candidate II(s)",
        mapped.ii(),
        mapped.mii,
        outcome.elapsed,
        outcome.attempts.len()
    );

    // 3. Inspect the kernel program: one instruction per (PE, cycle).
    let program = codegen::kernel_program(&kernel.dfg, &cgra, &mapped.mapping, &mapped.registers);
    println!("\n{program}");
    println!("utilization: {:.0}%", program.utilization() * 100.0);

    // 4. Execute the mapped loop on the physical machine model and compare
    //    every value against the sequential reference interpreter.
    let iterations = 16;
    let sim = verify_mapping(
        &kernel.dfg,
        &cgra,
        &mapped,
        kernel.memory.clone(),
        iterations,
    )
    .expect("mapped code must compute reference semantics");
    println!(
        "verified {iterations} iterations in {} machine cycles",
        sim.cycles
    );
    println!("first pseudo-random outputs: {:?}", &sim.memory[64..64 + 6]);
}
