//! Demonstrates the parallel mapping engine: the II-race against the
//! sequential search, the solver portfolio, and the batch cache.
//!
//! ```sh
//! cargo run --release --example engine_race
//! ```

use sat_mapit::cgra::Cgra;
use sat_mapit::core::Mapper;
use sat_mapit::engine::{map_raced, Engine, EngineConfig, Job};
use sat_mapit::kernels;
use std::time::Instant;

fn main() {
    // 1. One kernel, sequential vs raced: same best II, shared cores.
    let kernel = kernels::by_name("hotspot").expect("suite kernel");
    let cgra = Cgra::square(3);

    let t0 = Instant::now();
    let sequential = Mapper::new(&kernel.dfg, &cgra).run();
    let t_seq = t0.elapsed();

    let config = EngineConfig::default();
    let t0 = Instant::now();
    let raced = map_raced(&kernel.dfg, &cgra, &config);
    let t_race = t0.elapsed();

    println!(
        "hotspot on 3x3: sequential II={:?} in {t_seq:.2?} | raced II={:?} in {t_race:.2?} \
         ({} workers, {} attempts, {} cancelled)",
        sequential.ii(),
        raced.ii(),
        raced.stats.workers,
        raced.stats.tasks_started,
        raced.stats.tasks_cancelled,
    );
    assert_eq!(
        sequential.ii(),
        raced.ii(),
        "the race never changes the answer"
    );

    // 2. A portfolio race: three solver configurations per II.
    let portfolio = EngineConfig {
        portfolio: 3,
        race_width: 2,
        ..EngineConfig::default()
    };
    let t0 = Instant::now();
    let ported = map_raced(&kernel.dfg, &cgra, &portfolio);
    println!(
        "portfolio(3) race: II={:?} in {:.2?} ({} attempts started)",
        ported.ii(),
        t0.elapsed(),
        ported.stats.tasks_started,
    );

    // 3. Batch + cache: the whole suite on 3x3, submitted twice.
    let engine = Engine::new(EngineConfig::default());
    let jobs: Vec<Job> = kernels::all()
        .into_iter()
        .map(|k| Job::new(k.name().to_string(), k.dfg, Cgra::square(3)))
        .collect();

    let t0 = Instant::now();
    let first = engine.map_batch(jobs.clone());
    let cold = t0.elapsed();
    let t0 = Instant::now();
    let second = engine.map_batch(jobs);
    let warm = t0.elapsed();

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.outcome.ii(), b.outcome.ii());
        assert!(b.cached, "second submission must be cache-served");
    }
    let stats = engine.cache_stats();
    println!(
        "batch of {} jobs: cold {cold:.2?}, warm {warm:.2?} | cache {} entries, {} hits",
        first.len(),
        stats.entries,
        stats.hits,
    );
}
