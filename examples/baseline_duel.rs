//! SAT-MapIt vs the heuristic state of the art on a few kernels: prints
//! the achieved IIs and times side by side (a slice of the paper's Fig. 6
//! plus Tables I–IV).
//!
//! ```sh
//! cargo run --release --example baseline_duel -- [mesh-size] [timeout-secs]
//! ```

use sat_mapit::baselines::{BaselineConfig, PathSeekerMapper, RampMapper};
use sat_mapit::cgra::Cgra;
use sat_mapit::core::Mapper;
use sat_mapit::kernels;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let timeout = Duration::from_secs(args.next().and_then(|s| s.parse().ok()).unwrap_or(30));
    let cgra = Cgra::square(size);
    println!("target: {cgra}, timeout {timeout:?} per mapper\n");
    println!(" kernel       | SAT-MapIt     | RAMP-like     | PathSeeker-like");
    println!(" -------------+---------------+---------------+----------------");

    for kernel in kernels::all() {
        let sat = Mapper::new(&kernel.dfg, &cgra).with_timeout(timeout).run();
        let config = BaselineConfig {
            timeout: Some(timeout),
            ..BaselineConfig::default()
        };
        let ramp = RampMapper::new(&kernel.dfg, &cgra)
            .with_config(config.clone())
            .run();
        let path = PathSeekerMapper::new(&kernel.dfg, &cgra)
            .with_config(config)
            .run();

        let cell = |ii: Option<u32>, secs: f64| match ii {
            Some(ii) => format!("II={ii:<2} {secs:>6.2}s"),
            None => format!("✕    {secs:>6.2}s"),
        };
        println!(
            " {:<12} | {:<13} | {:<13} | {:<13}",
            kernel.name(),
            cell(sat.ii(), sat.elapsed.as_secs_f64()),
            cell(ramp.ii(), ramp.elapsed.as_secs_f64()),
            cell(path.ii(), path.elapsed.as_secs_f64()),
        );
    }
    println!("\n(✕ = no mapping within budget; lower II is better)");
}
