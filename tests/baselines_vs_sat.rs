//! Cross-checks between the SAT mapper and the heuristic baselines: the
//! SAT mapper is exact within the shared architectural model, so whenever
//! a baseline finds II_b, SAT must find II_sat <= II_b (unless the
//! baseline used routing, which changes the DFG). Every mapping from every
//! mapper must validate and execute correctly.

use sat_mapit::baselines::{BaselineConfig, PathSeekerMapper, RampMapper};
use sat_mapit::cgra::Cgra;
use sat_mapit::core::Mapping;
use sat_mapit::core::{validate_mapping, Mapper};
use sat_mapit::dfg::interp::interpret;
use sat_mapit::dfg::Dfg;
use sat_mapit::kernels;
use sat_mapit::regalloc::RegAllocation;
use sat_mapit::sim::simulate;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

/// Simulates a (possibly route-augmented) mapped DFG and compares it with
/// its own reference interpretation.
fn check_executes(dfg: &Dfg, cgra: &Cgra, mapping: &Mapping, regs: &RegAllocation, mem: Vec<i64>) {
    let iterations = 8;
    let reference = interpret(dfg, mem.clone(), iterations).expect("interpretable");
    let sim = simulate(dfg, cgra, mapping, regs, mem, iterations).expect("simulates");
    for i in 0..iterations as usize {
        for n in dfg.node_ids() {
            assert_eq!(
                reference.values[i][n.index()],
                sim.values[i][n.index()],
                "node {n} iteration {i}"
            );
        }
    }
    assert_eq!(reference.memory, sim.memory);
}

#[test]
fn sat_never_loses_to_pathseeker_on_3x3() {
    let cgra = Cgra::square(3);
    for kernel in kernels::all() {
        let sat = Mapper::new(&kernel.dfg, &cgra).with_timeout(TIMEOUT).run();
        let ps = PathSeekerMapper::new(&kernel.dfg, &cgra)
            .with_config(BaselineConfig {
                timeout: Some(TIMEOUT),
                ..BaselineConfig::default()
            })
            .run();
        if let (Some(sat_ii), Some(ps_ii)) = (sat.ii(), ps.ii()) {
            assert!(
                sat_ii <= ps_ii,
                "{}: SAT II={sat_ii} > PathSeeker II={ps_ii}",
                kernel.name()
            );
        }
        if let Ok(m) = ps.result {
            assert!(validate_mapping(&m.dfg, &cgra, &m.mapping).is_ok());
            check_executes(
                &m.dfg,
                &cgra,
                &m.mapping,
                &m.registers,
                kernel.memory.clone(),
            );
        }
    }
}

#[test]
fn sat_never_loses_to_unrouted_ramp_on_3x3() {
    let cgra = Cgra::square(3);
    for kernel in kernels::all() {
        let sat = Mapper::new(&kernel.dfg, &cgra).with_timeout(TIMEOUT).run();
        let ramp = RampMapper::new(&kernel.dfg, &cgra)
            .with_config(BaselineConfig {
                timeout: Some(TIMEOUT),
                ..BaselineConfig::default()
            })
            .run();
        if let Ok(m) = &ramp.result {
            if m.routes == 0 {
                if let Some(sat_ii) = sat.ii() {
                    assert!(
                        sat_ii <= m.ii(),
                        "{}: SAT II={sat_ii} > RAMP II={}",
                        kernel.name(),
                        m.ii()
                    );
                }
            }
            assert!(validate_mapping(&m.dfg, &cgra, &m.mapping).is_ok());
            check_executes(
                &m.dfg,
                &cgra,
                &m.mapping,
                &m.registers,
                kernel.memory.clone(),
            );
        }
    }
}

#[test]
fn routed_ramp_mappings_preserve_original_node_semantics() {
    // Build a fan-out-heavy graph that pushes RAMP into routing, then
    // check the routed mapping still computes the original nodes' values.
    let mut dfg = Dfg::new("fan6");
    let src = dfg.add_const(7);
    let mut sinks = Vec::new();
    for _ in 0..6 {
        let n = dfg.add_node(sat_mapit::dfg::Op::Neg);
        dfg.add_edge(src, n, 0);
        sinks.push(n);
    }
    let cgra = Cgra::square(3);
    let outcome = RampMapper::new(&dfg, &cgra).run();
    let mapped = outcome.result.expect("mappable");
    let reference = interpret(&dfg, vec![], 4).unwrap();
    let routed_ref = interpret(&mapped.dfg, vec![], 4).unwrap();
    for n in dfg.node_ids() {
        for i in 0..4 {
            assert_eq!(
                reference.values[i][n.index()],
                routed_ref.values[i][n.index()]
            );
        }
    }
    check_executes(
        &mapped.dfg,
        &cgra,
        &mapped.mapping,
        &mapped.registers,
        vec![0; 8],
    );
}

#[test]
fn baselines_handle_timeouts_gracefully() {
    let kernel = kernels::by_name("hotspot").unwrap();
    let cgra = Cgra::square(2);
    let config = BaselineConfig {
        timeout: Some(Duration::from_millis(1)),
        ..BaselineConfig::default()
    };
    let ramp = RampMapper::new(&kernel.dfg, &cgra)
        .with_config(config.clone())
        .run();
    let ps = PathSeekerMapper::new(&kernel.dfg, &cgra)
        .with_config(config)
        .run();
    assert!(ramp.result.is_err());
    assert!(ps.result.is_err());
}
