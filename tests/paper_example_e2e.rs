//! The paper's running example, end to end: Fig. 2 (mapping at II=3 on a
//! 2×2), Fig. 4/5 (schedules — unit-tested in `satmapit-schedule`), and
//! the staged prolog/kernel/epilog structure.

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{codegen, Mapper};
use sat_mapit::kernels::paper_example;
use sat_mapit::schedule::{mii, Kms, MobilitySchedule};
use sat_mapit::sim::verify_mapping;

#[test]
fn maps_at_ii_3_on_2x2_like_fig2c() {
    let kernel = paper_example();
    let cgra = Cgra::square(2);
    assert_eq!(mii(&kernel.dfg, &cgra), Some(3));
    let outcome = Mapper::new(&kernel.dfg, &cgra).run();
    let mapped = outcome.result.expect("paper maps it");
    assert_eq!(mapped.ii(), 3, "paper Fig. 2 kernel is 3 cycles");
    verify_mapping(
        &kernel.dfg,
        &cgra,
        &mapped,
        kernel.memory.clone(),
        kernel.sim_iterations,
    )
    .expect("verified");
}

#[test]
fn kms_candidate_count_matches_var_budget() {
    // |variables| = candidates × PEs (paper §IV-C literal space).
    let kernel = paper_example();
    let ms = MobilitySchedule::compute(&kernel.dfg).unwrap();
    let kms = Kms::build(&ms, 3);
    let cgra = Cgra::square(2);
    let vm = sat_mapit::core::VarMap::build(&kernel.dfg, &cgra, &kms).unwrap();
    assert_eq!(vm.num_vars(), kms.num_candidates() * cgra.num_pes());
}

#[test]
fn staged_schedule_has_paper_shape() {
    // With II=3 and 2 folds, running 2 iterations gives 8 rows:
    // prolog t0..2, kernel t3..5, epilog t6..7 (paper Fig. 2b).
    let kernel = paper_example();
    let cgra = Cgra::square(2);
    let mapped = Mapper::new(&kernel.dfg, &cgra).run().result.unwrap();
    if mapped.mapping.folds == 2 && mapped.mapping.schedule_len() == 5 {
        use sat_mapit::core::codegen::{stage_of, Stage};
        let m = &mapped.mapping;
        for t in 0..3 {
            assert_eq!(stage_of(m, 2, t), Stage::Prolog, "t={t}");
        }
        for t in 3..6 {
            assert_eq!(stage_of(m, 2, t), Stage::Kernel, "t={t}");
        }
        for t in 6..8 {
            assert_eq!(stage_of(m, 2, t), Stage::Epilog, "t={t}");
        }
    }
    // Regardless of the found schedule's length, every instance must
    // appear exactly once in the render.
    let rendered = codegen::render_stages(&kernel.dfg, &mapped.mapping, 3);
    for n in kernel.dfg.node_ids() {
        for i in 0..3 {
            assert_eq!(
                rendered.matches(&format!(" {}@{}", n, i)).count(),
                1,
                "{n}@{i}"
            );
        }
    }
}

#[test]
fn larger_arrays_reach_lower_ii() {
    // Fig. 6 trend: the same kernel gets a smaller (or equal) II on a
    // bigger array, down to the recurrence bound.
    let kernel = paper_example();
    let mut last = u32::MAX;
    for n in 2..=4u16 {
        let cgra = Cgra::square(n);
        let ii = Mapper::new(&kernel.dfg, &cgra).run().ii().unwrap();
        assert!(ii <= last, "II must not grow with array size");
        last = ii;
    }
    assert!(
        last <= 2,
        "plenty of room on 4x4 (accumulator allows II>=1)"
    );
}
