//! Engine/sequential agreement: for every kernel in the suite that maps
//! on a 4x4 mesh, the parallel engine must return the same best II as the
//! sequential mapper, and the result cache must return a byte-identical
//! mapping on the second lookup.

use proptest::prelude::*;
use sat_mapit::cgra::Cgra;
use sat_mapit::core::{validate_mapping, Mapper};
use sat_mapit::engine::{map_raced, Engine, EngineConfig, Job, ShareConfig};
use sat_mapit::kernels;
use sat_mapit::sim::verify_mapping;
use std::sync::Arc;
use std::time::Duration;

fn config_with_timeout() -> EngineConfig {
    EngineConfig {
        mapper: sat_mapit::core::MapperConfig {
            timeout: Some(Duration::from_secs(120)),
            ..sat_mapit::core::MapperConfig::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn incremental_ladder_matches_scratch_on_4x4_for_every_kernel() {
    // The tentpole guarantee: the incremental ladder (one live solver,
    // learned clauses carried across IIs, UNSAT-core bound tightening)
    // returns the same best II as the paper's scratch loop on the whole
    // suite.
    let cgra = Cgra::square(4);
    let base = config_with_timeout().mapper;
    for kernel in kernels::all() {
        let scratch = Mapper::new(&kernel.dfg, &cgra)
            .with_config(sat_mapit::core::MapperConfig {
                incremental: false,
                ..base.clone()
            })
            .run();
        let incremental = Mapper::new(&kernel.dfg, &cgra)
            .with_config(base.clone())
            .run();
        let scratch_ii = scratch
            .ii()
            .unwrap_or_else(|| panic!("{} should map (scratch) on 4x4", kernel.name()));
        assert_eq!(
            incremental.ii(),
            Some(scratch_ii),
            "{}: incremental ladder must return the scratch ladder's best II",
            kernel.name()
        );
        // The per-II traces agree rung for rung, not just on the answer.
        let scratch_trace: Vec<u32> = scratch.attempts.iter().map(|a| a.ii).collect();
        let incr_trace: Vec<u32> = incremental.attempts.iter().map(|a| a.ii).collect();
        assert_eq!(incr_trace, scratch_trace, "{}", kernel.name());
        // And the incremental winner is independently valid + executable.
        let mapped = incremental.result.expect("mapped above");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 4)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

#[test]
fn engine_matches_sequential_on_4x4_for_every_kernel() {
    let cgra = Cgra::square(4);
    let config = config_with_timeout();
    for kernel in kernels::all() {
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        let seq_ii = sequential
            .ii()
            .unwrap_or_else(|| panic!("{} should map sequentially on 4x4", kernel.name()));
        assert_eq!(
            raced.ii(),
            Some(seq_ii),
            "{}: engine best II must equal the sequential mapper's",
            kernel.name()
        );
        // The engine's winning mapping is independently valid and executes
        // to the same values as the reference semantics.
        let mapped = raced.outcome.result.expect("mapped above");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 4)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

#[test]
fn engine_portfolio_matches_sequential_on_small_kernels() {
    let cgra = Cgra::square(4);
    let mut config = config_with_timeout();
    config.portfolio = 3;
    config.race_width = 2;
    for name in ["srand", "basicmath", "gsm", "nw"] {
        let kernel = kernels::by_name(name).unwrap();
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        assert_eq!(raced.ii(), sequential.ii(), "{name}");
    }
}

/// Clause sharing off (the default) is bit-identical to the pre-share
/// engine: no pools are allocated, no share traffic appears in the
/// telemetry, and a single-worker portfolio race — which executes its
/// tasks in a deterministic order — reproduces its result exactly.
#[test]
fn share_off_portfolio_race_is_bit_identical_and_the_default() {
    assert_eq!(ShareConfig::default(), ShareConfig::off());
    let cgra = Cgra::square(2);
    let mut config = config_with_timeout();
    config.portfolio = 2;
    config.race_width = 1;
    config.workers = 1;
    config.share = ShareConfig::off();
    for name in ["srand", "gsm", "stringsearch"] {
        let kernel = kernels::by_name(name).unwrap();
        let a = map_raced(&kernel.dfg, &cgra, &config);
        let b = map_raced(&kernel.dfg, &cgra, &config);
        assert_eq!(
            format!("{:?}", a.outcome.result),
            format!("{:?}", b.outcome.result),
            "{name}: share-off single-worker races must be reproducible"
        );
        assert_eq!(a.stats.shared_exported, 0, "{name}: no pool may exist");
        assert_eq!(a.stats.shared_imported, 0, "{name}");
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        assert_eq!(a.ii(), sequential.ii(), "{name}");
    }
}

/// The tentpole acceptance on real kernels: a sharing portfolio racing
/// the 2x2 suite returns the same best II as the sequential mapper (the
/// default search is exact, so every closure is a proof and sharing can
/// only change *which* model wins, never the II), and clauses actually
/// travel between siblings on the multi-rung kernels.
#[test]
fn share_on_portfolio_matches_sequential_on_the_2x2_suite() {
    let cgra = Cgra::square(2);
    let mut config = config_with_timeout();
    config.portfolio = 3;
    config.race_width = 2;
    config.share = ShareConfig::on();
    // Force sibling concurrency even on a 1-CPU runner: with the default
    // (one worker per hardware thread) a single-core box would run one
    // variant per II to completion and the portfolio — and therefore
    // sharing — would never materialize.
    config.workers = 4;
    let mut total_imported = 0u64;
    for kernel in kernels::all() {
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        assert_eq!(
            raced.ii(),
            sequential.ii(),
            "{}: sharing must not change the best II",
            kernel.name()
        );
        let mapped = raced.outcome.result.expect("2x2 suite maps");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        total_imported += raced.stats.shared_imported;
    }
    assert!(
        total_imported > 0,
        "across the whole suite at portfolio 3, at least one sibling \
         clause must actually be imported"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Share-on never reports a *worse* (higher) best II than share-off,
    /// across randomly drawn suite kernels and share knobs. (With the
    /// exact default search both are equal; `<=` is what sharing's
    /// soundness argument guarantees even under freak scheduling.)
    #[test]
    fn share_on_is_never_worse_than_share_off_on_2x2(
        kernel_index in 0usize..11,
        lbd_max in 2u32..8,
        ring_cap in 64usize..2048,
        portfolio in 2usize..4,
    ) {
        let kernel = kernels::by_name(kernels::NAMES[kernel_index]).unwrap();
        let cgra = Cgra::square(2);
        let mut off = config_with_timeout();
        off.portfolio = portfolio;
        off.race_width = 2;
        off.workers = 4; // sibling concurrency even on a 1-CPU runner
        off.share = ShareConfig::off();
        let mut on = off.clone();
        on.share = ShareConfig {
            enabled: true,
            share_lbd_max: lbd_max,
            share_len_max: 24,
            share_ring_cap: ring_cap,
        };
        let base = map_raced(&kernel.dfg, &cgra, &off);
        let shared = map_raced(&kernel.dfg, &cgra, &on);
        let base_ii = base.ii().expect("2x2 suite maps");
        let shared_ii = shared.ii().expect("2x2 suite maps under sharing");
        prop_assert!(
            shared_ii <= base_ii,
            "{}: share-on II {} worse than share-off II {}",
            kernel.name(), shared_ii, base_ii
        );
    }
}

#[test]
fn cache_returns_byte_identical_mapping_on_second_lookup() {
    let cgra = Cgra::square(4);
    let engine = Engine::new(config_with_timeout());
    for name in ["srand", "sha", "hotspot"] {
        let kernel = kernels::by_name(name).unwrap();
        let (first, cached_first) = engine.map(&kernel.dfg, &cgra);
        let (second, cached_second) = engine.map(&kernel.dfg, &cgra);
        assert!(!cached_first, "{name}: first lookup must solve");
        assert!(cached_second, "{name}: second lookup must hit the cache");
        assert!(
            Arc::ptr_eq(&first, &second),
            "{name}: cache must return the same allocation"
        );
        // Byte-identical down to the rendered representation.
        let a = format!("{:?}", first.outcome.result);
        let b = format!("{:?}", second.outcome.result);
        assert_eq!(a, b, "{name}");
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 3);
}

#[test]
fn batch_frontend_maps_the_suite_across_three_mesh_sizes() {
    // The acceptance scenario behind `satmapit batch`: the full suite
    // across 3x3, 4x4 and 5x5 through the engine, every job mapping.
    let engine = Engine::new(config_with_timeout());
    let mut jobs = Vec::new();
    for kernel in kernels::all() {
        for size in [3u16, 4, 5] {
            jobs.push(Job::new(
                format!("{}@{size}x{size}", kernel.name()),
                kernel.dfg.clone(),
                Cgra::square(size),
            ));
        }
    }
    let expected = jobs.len();
    let items = engine.map_batch(jobs);
    assert_eq!(items.len(), expected);
    for item in &items {
        assert!(
            item.outcome.ii().is_some(),
            "{} failed: {:?}",
            item.name,
            item.outcome.outcome.result
        );
    }
    assert_eq!(engine.cache_stats().entries, expected, "all jobs distinct");
}
