//! Engine/sequential agreement: for every kernel in the suite that maps
//! on a 4x4 mesh, the parallel engine must return the same best II as the
//! sequential mapper, and the result cache must return a byte-identical
//! mapping on the second lookup.

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{validate_mapping, Mapper};
use sat_mapit::engine::{map_raced, Engine, EngineConfig, Job};
use sat_mapit::kernels;
use sat_mapit::sim::verify_mapping;
use std::sync::Arc;
use std::time::Duration;

fn config_with_timeout() -> EngineConfig {
    EngineConfig {
        mapper: sat_mapit::core::MapperConfig {
            timeout: Some(Duration::from_secs(120)),
            ..sat_mapit::core::MapperConfig::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn incremental_ladder_matches_scratch_on_4x4_for_every_kernel() {
    // The tentpole guarantee: the incremental ladder (one live solver,
    // learned clauses carried across IIs, UNSAT-core bound tightening)
    // returns the same best II as the paper's scratch loop on the whole
    // suite.
    let cgra = Cgra::square(4);
    let base = config_with_timeout().mapper;
    for kernel in kernels::all() {
        let scratch = Mapper::new(&kernel.dfg, &cgra)
            .with_config(sat_mapit::core::MapperConfig {
                incremental: false,
                ..base.clone()
            })
            .run();
        let incremental = Mapper::new(&kernel.dfg, &cgra)
            .with_config(base.clone())
            .run();
        let scratch_ii = scratch
            .ii()
            .unwrap_or_else(|| panic!("{} should map (scratch) on 4x4", kernel.name()));
        assert_eq!(
            incremental.ii(),
            Some(scratch_ii),
            "{}: incremental ladder must return the scratch ladder's best II",
            kernel.name()
        );
        // The per-II traces agree rung for rung, not just on the answer.
        let scratch_trace: Vec<u32> = scratch.attempts.iter().map(|a| a.ii).collect();
        let incr_trace: Vec<u32> = incremental.attempts.iter().map(|a| a.ii).collect();
        assert_eq!(incr_trace, scratch_trace, "{}", kernel.name());
        // And the incremental winner is independently valid + executable.
        let mapped = incremental.result.expect("mapped above");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 4)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

#[test]
fn engine_matches_sequential_on_4x4_for_every_kernel() {
    let cgra = Cgra::square(4);
    let config = config_with_timeout();
    for kernel in kernels::all() {
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        let seq_ii = sequential
            .ii()
            .unwrap_or_else(|| panic!("{} should map sequentially on 4x4", kernel.name()));
        assert_eq!(
            raced.ii(),
            Some(seq_ii),
            "{}: engine best II must equal the sequential mapper's",
            kernel.name()
        );
        // The engine's winning mapping is independently valid and executes
        // to the same values as the reference semantics.
        let mapped = raced.outcome.result.expect("mapped above");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 4)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

#[test]
fn engine_portfolio_matches_sequential_on_small_kernels() {
    let cgra = Cgra::square(4);
    let mut config = config_with_timeout();
    config.portfolio = 3;
    config.race_width = 2;
    for name in ["srand", "basicmath", "gsm", "nw"] {
        let kernel = kernels::by_name(name).unwrap();
        let sequential = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        assert_eq!(raced.ii(), sequential.ii(), "{name}");
    }
}

#[test]
fn cache_returns_byte_identical_mapping_on_second_lookup() {
    let cgra = Cgra::square(4);
    let engine = Engine::new(config_with_timeout());
    for name in ["srand", "sha", "hotspot"] {
        let kernel = kernels::by_name(name).unwrap();
        let (first, cached_first) = engine.map(&kernel.dfg, &cgra);
        let (second, cached_second) = engine.map(&kernel.dfg, &cgra);
        assert!(!cached_first, "{name}: first lookup must solve");
        assert!(cached_second, "{name}: second lookup must hit the cache");
        assert!(
            Arc::ptr_eq(&first, &second),
            "{name}: cache must return the same allocation"
        );
        // Byte-identical down to the rendered representation.
        let a = format!("{:?}", first.outcome.result);
        let b = format!("{:?}", second.outcome.result);
        assert_eq!(a, b, "{name}");
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 3);
}

#[test]
fn batch_frontend_maps_the_suite_across_three_mesh_sizes() {
    // The acceptance scenario behind `satmapit batch`: the full suite
    // across 3x3, 4x4 and 5x5 through the engine, every job mapping.
    let engine = Engine::new(config_with_timeout());
    let mut jobs = Vec::new();
    for kernel in kernels::all() {
        for size in [3u16, 4, 5] {
            jobs.push(Job::new(
                format!("{}@{size}x{size}", kernel.name()),
                kernel.dfg.clone(),
                Cgra::square(size),
            ));
        }
    }
    let expected = jobs.len();
    let items = engine.map_batch(jobs);
    assert_eq!(items.len(), expected);
    for item in &items {
        assert!(
            item.outcome.ii().is_some(),
            "{} failed: {:?}",
            item.name,
            item.outcome.outcome.result
        );
    }
    assert_eq!(engine.cache_stats().entries, expected, "all jobs distinct");
}
