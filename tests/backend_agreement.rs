//! Cross-backend agreement: the SAT ladder and the monomorphism backend
//! must pin the same best II on the whole suite, and a cross-backend
//! race (`BackendKind::Race`) must agree with the sequential SAT mapper
//! while actually exchanging proven bounds between the lanes. See
//! docs/backends.md for the soundness argument these tests pin down.

use proptest::prelude::*;
use sat_mapit::cgra::Cgra;
use sat_mapit::core::{validate_mapping, Mapper};
use sat_mapit::dfg::{Dfg, Op};
use sat_mapit::engine::{map_raced, BackendKind, Engine, EngineConfig};
use sat_mapit::kernels;
use sat_mapit::morph::MorphMapper;
use sat_mapit::sim::verify_mapping;
use std::time::Duration;

fn config(backend: BackendKind) -> EngineConfig {
    // Safety-net budget, not a real bound: the slowest arm of the suite
    // (sequential morph on `patricia` at 4x4) takes ~2 s in release but
    // ~106 s unoptimized, so debug builds get a far larger net to keep
    // the agreement assertions from degrading into timeout flakes on a
    // loaded machine.
    let timeout = if cfg!(debug_assertions) { 900 } else { 120 };
    EngineConfig {
        mapper: sat_mapit::core::MapperConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..sat_mapit::core::MapperConfig::default()
        },
        backend,
        ..EngineConfig::default()
    }
}

/// 1 const fanning out to 5 negations: on a 1x2 mesh the MII is 3 but
/// the first rungs are UNSAT, so a ladder must prove real infeasible IIs
/// before it maps — exactly the shape bound exchange feeds on.
fn fanout() -> (Dfg, Cgra) {
    let mut dfg = Dfg::new("fanout");
    let c = dfg.add_const(7);
    for _ in 0..5 {
        let n = dfg.add_node(Op::Neg);
        dfg.add_edge(c, n, 0);
    }
    (dfg, Cgra::new(1, 2))
}

/// The tentpole acceptance: on the full 11-kernel suite at 4x4, the
/// sequential morph ladder and the cross-backend race both return the
/// sequential SAT mapper's best II, and the race's winning mapping is
/// independently valid and executable.
#[test]
fn all_backends_pin_the_same_best_ii_on_4x4_for_every_kernel() {
    let cgra = Cgra::square(4);
    let config = config(BackendKind::Race);
    for kernel in kernels::all() {
        let sat = Mapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        let sat_ii = sat
            .ii()
            .unwrap_or_else(|| panic!("{} should map (sat) on 4x4", kernel.name()));
        let morph = MorphMapper::new(&kernel.dfg, &cgra)
            .with_config(config.mapper.clone())
            .run();
        assert_eq!(
            morph.ii(),
            Some(sat_ii),
            "{}: morph best II must equal the SAT ladder's",
            kernel.name()
        );
        let raced = map_raced(&kernel.dfg, &cgra, &config);
        assert_eq!(
            raced.ii(),
            Some(sat_ii),
            "{}: cross-backend race best II must equal the sequential SAT mapper's",
            kernel.name()
        );
        assert_eq!(
            raced.stats.sat_wins + raced.stats.morph_wins,
            1,
            "{}: exactly one backend wins a successful race",
            kernel.name()
        );
        let mapped = raced.outcome.result.expect("mapped above");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
        verify_mapping(&kernel.dfg, &cgra, &mapped, kernel.memory.clone(), 4)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    }
}

/// A single-worker cross-backend race executes its tasks in a
/// deterministic order: the canonical SAT lane proves the UNSAT rungs
/// first, and every such proof closure is a bound the morph lane never
/// has to re-establish — `bound_exchanges` must count them.
#[test]
fn cross_backend_race_exchanges_bounds_on_unsat_rungs() {
    let (dfg, cgra) = fanout();
    let mut cfg = config(BackendKind::Race);
    cfg.workers = 1;
    let raced = map_raced(&dfg, &cgra, &cfg);
    let sequential = Mapper::new(&dfg, &cgra)
        .with_config(cfg.mapper.clone())
        .run();
    assert_eq!(raced.ii(), sequential.ii(), "race must agree on fanout");
    assert!(
        raced.stats.bound_exchanges > 0,
        "the fanout ladder has UNSAT rungs; each proof closure in a \
         cross-backend race is a bound exchange, got stats {:?}",
        raced.stats
    );
}

/// Single-backend races never report bound exchanges — the counter is
/// defined as *cross*-backend proof traffic.
#[test]
fn single_backend_races_report_no_bound_exchanges() {
    let (dfg, cgra) = fanout();
    for backend in [BackendKind::Sat, BackendKind::Morph] {
        let raced = map_raced(&dfg, &cgra, &config(backend));
        assert_eq!(
            raced.stats.bound_exchanges, 0,
            "{backend}: single-backend race counted an exchange"
        );
    }
}

/// `BackendKind::Morph` re-hosts the engine entirely on the morph lane:
/// same best II as the sequential morph ladder, and the win counters
/// attribute the mapping to morph.
#[test]
fn morph_backend_through_the_engine_matches_sequential_morph() {
    let cgra = Cgra::square(3);
    let cfg = config(BackendKind::Morph);
    for name in ["srand", "gsm", "nw"] {
        let kernel = kernels::by_name(name).unwrap();
        let sequential = MorphMapper::new(&kernel.dfg, &cgra)
            .with_config(cfg.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &cfg);
        assert_eq!(raced.ii(), sequential.ii(), "{name}");
        assert_eq!(raced.stats.sat_wins, 0, "{name}: no SAT lane ran");
        assert_eq!(raced.stats.morph_wins, 1, "{name}");
        let mapped = raced.outcome.result.expect("3x3 maps");
        assert!(validate_mapping(&kernel.dfg, &cgra, &mapped.mapping).is_ok());
    }
}

/// The batch engine aggregates the per-race counters into its
/// fleet-level cache statistics (what the daemon's `stats` response and
/// `satmapit batch --stats` report).
#[test]
fn batch_engine_aggregates_cross_backend_counters() {
    let (dfg, cgra) = fanout();
    let mut cfg = config(BackendKind::Race);
    cfg.workers = 1;
    let engine = Engine::new(cfg);
    let (outcome, cached) = engine.map(&dfg, &cgra);
    assert!(!cached);
    assert!(outcome.ii().is_some(), "fanout maps on 1x2");
    let stats = engine.cache_stats();
    assert_eq!(
        stats.sat_wins + stats.morph_wins,
        1,
        "one race, one winner: {stats:?}"
    );
    assert!(
        stats.bound_exchanges > 0,
        "the race's exchanges must surface in the engine stats: {stats:?}"
    );
}

/// The suite kernels whose morph ladder finishes quickly on a 2x2 mesh.
/// `hotspot` and `nw` sit in morph's small-mesh blind spot — their
/// feasible rungs there pair a huge candidate space with sparse
/// solutions, so the sequential-morph arm of the property would burn
/// its whole timeout. Both are pinned at 4x4 by
/// `all_backends_pin_the_same_best_ii_on_4x4_for_every_kernel`.
const SMALL_MESH_KERNELS: [&str; 9] = [
    "sha",
    "gsm",
    "patricia",
    "bitcount",
    "backprop",
    "srand",
    "sha2",
    "basicmath",
    "stringsearch",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cross-backend race never returns a *worse* (higher) best II
    /// than either backend running alone: closures are only canonical
    /// giveups or sound proofs, and an extra lane can only add mappings.
    #[test]
    fn cross_backend_race_is_never_worse_than_either_backend_alone(
        kernel_index in 0usize..SMALL_MESH_KERNELS.len(),
        race_width in 1usize..4,
    ) {
        let kernel = kernels::by_name(SMALL_MESH_KERNELS[kernel_index]).unwrap();
        let cgra = Cgra::square(2);
        let mut cfg = config(BackendKind::Race);
        cfg.race_width = race_width;
        let sat = Mapper::new(&kernel.dfg, &cgra)
            .with_config(cfg.mapper.clone())
            .run();
        let morph = MorphMapper::new(&kernel.dfg, &cgra)
            .with_config(cfg.mapper.clone())
            .run();
        let raced = map_raced(&kernel.dfg, &cgra, &cfg);
        let race_ii = raced.ii().expect("2x2 suite maps under the race");
        let sat_ii = sat.ii().expect("2x2 suite maps under sat");
        let morph_ii = morph.ii().expect("2x2 suite maps under morph");
        prop_assert!(
            race_ii <= sat_ii && race_ii <= morph_ii,
            "{}: race II {} worse than sat {} / morph {}",
            kernel.name(), race_ii, sat_ii, morph_ii
        );
    }
}
