//! Cross-crate property tests: random loop bodies through the full
//! pipeline, plus invariants linking the scheduling theory to the mapper.

use proptest::prelude::*;
use sat_mapit::baselines::ims::{modulo_schedule, schedule_is_legal, Priority};
use sat_mapit::cgra::Cgra;
use sat_mapit::core::{validate_mapping, MapFailure, Mapper, MapperConfig};
use sat_mapit::dfg::gen::{random_dfg, RandomDfgConfig};
use sat_mapit::schedule::{mii, rec_mii, res_mii, Kms, MobilitySchedule};
use sat_mapit::sim::verify_mapping;

fn dfg_config() -> impl Strategy<Value = RandomDfgConfig> {
    (4usize..14, 0usize..3, any::<bool>(), any::<u64>()).prop_map(
        |(nodes, back_edges, memory_ops, seed)| RandomDfgConfig {
            nodes,
            back_edges,
            memory_ops,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: whatever random loop body we map, the mapped
    /// program computes exactly the reference semantics.
    #[test]
    fn mapped_random_loops_execute_correctly(config in dfg_config()) {
        let dfg = random_dfg(&config);
        let cgra = Cgra::square(3);
        let mapper_config = MapperConfig { max_ii: 8, ..MapperConfig::default() };
        let outcome = Mapper::new(&dfg, &cgra).with_config(mapper_config).run();
        if let Ok(mapped) = outcome.result {
            prop_assert!(validate_mapping(&dfg, &cgra, &mapped.mapping).is_ok());
            let mapped_ii = mapped.ii();
            prop_assert!(mapped_ii >= mii(&dfg, &cgra).unwrap());
            let sim = verify_mapping(&dfg, &cgra, &mapped, vec![3; 64], 5);
            prop_assert!(sim.is_ok(), "{:?}", sim.err());
        }
    }

    /// MII bounds are genuine lower bounds for both mapper families.
    #[test]
    fn achieved_ii_respects_bounds(config in dfg_config()) {
        let dfg = random_dfg(&config);
        let cgra = Cgra::square(2);
        let mapper_config = MapperConfig { max_ii: 8, ..MapperConfig::default() };
        let outcome = Mapper::new(&dfg, &cgra).with_config(mapper_config).run();
        if let Some(ii) = outcome.ii() {
            prop_assert!(ii >= res_mii(&dfg, &cgra).unwrap());
            prop_assert!(ii >= rec_mii(&dfg));
        }
    }

    /// IMS schedules, when produced, always pass the legality check.
    #[test]
    fn ims_schedules_are_legal(config in dfg_config(), ii_extra in 0u32..3) {
        let dfg = random_dfg(&config);
        let cgra = Cgra::square(3);
        let ii = mii(&dfg, &cgra).unwrap() + ii_extra;
        for p in [Priority::Height, Priority::Random(config.seed)] {
            if let Some(times) = modulo_schedule(&dfg, &cgra, ii, p, 40) {
                prop_assert!(schedule_is_legal(&dfg, &cgra, &times, ii));
            }
        }
    }

    /// KMS structure: positions are exactly the (extended) mobility window
    /// folded by II, for every node and candidate II.
    #[test]
    fn kms_positions_consistent(config in dfg_config(), ii in 1u32..7, slack in 0u32..3) {
        let dfg = random_dfg(&config);
        let ms = MobilitySchedule::compute(&dfg).unwrap();
        let kms = Kms::build_with_slack(&ms, ii, slack);
        for n in dfg.node_ids() {
            let ps = kms.positions(n);
            prop_assert_eq!(ps.len() as u32, ms.mobility(n) + 1 + slack);
            for (k, p) in ps.iter().enumerate() {
                prop_assert_eq!(kms.unfolded_time(*p), ms.asap(n) + k as u32);
            }
        }
    }

    /// Fuzzing the validator: randomly perturbing a valid mapping either
    /// trips the validator, or — if the perturbed mapping is still legal —
    /// the simulator still reproduces reference semantics. There is no
    /// middle ground where an accepted mapping computes wrong values.
    #[test]
    fn perturbed_mappings_never_silently_miscompute(
        config in dfg_config(),
        node_sel in any::<u32>(),
        pe_sel in any::<u16>(),
        cycle_sel in any::<u32>(),
    ) {
        use sat_mapit::cgra::PeId;
        use sat_mapit::core::{Placement, TransferKind};
        use sat_mapit::sim::simulate;
        use sat_mapit::dfg::interp::interpret;

        let dfg = random_dfg(&config);
        let cgra = Cgra::square(3);
        let mapper_config = MapperConfig { max_ii: 8, ..MapperConfig::default() };
        let outcome = Mapper::new(&dfg, &cgra).with_config(mapper_config).run();
        let Ok(mapped) = outcome.result else { return Ok(()); };

        // Perturb one node's placement.
        let mut mapping = mapped.mapping.clone();
        let v = (node_sel as usize) % dfg.num_nodes();
        let ii = mapping.ii;
        mapping.placements[v] = Placement {
            pe: PeId(pe_sel % cgra.num_pes() as u16),
            cycle: cycle_sel % ii,
            fold: mapping.placements[v].fold,
        };
        // Re-derive transfer kinds so shape stays consistent.
        for (i, (_, e)) in dfg.edges().enumerate() {
            mapping.transfers[i] =
                if mapping.placements[e.src.index()].pe == mapping.placements[e.dst.index()].pe {
                    TransferKind::SamePeRegister
                } else {
                    TransferKind::NeighborOutput
                };
        }

        if validate_mapping(&dfg, &cgra, &mapping).is_ok() {
            // Still legal: re-allocate registers and execute.
            if let Ok(regs) = sat_mapit::core::allocate_registers(&dfg, &cgra, &mapping, 1_000_000) {
                let iterations = 4;
                let reference = interpret(&dfg, vec![5; 64], iterations).unwrap();
                let sim = simulate(&dfg, &cgra, &mapping, &regs, vec![5; 64], iterations).unwrap();
                for i in 0..iterations as usize {
                    for n in dfg.node_ids() {
                        prop_assert_eq!(
                            reference.values[i][n.index()],
                            sim.values[i][n.index()],
                            "node {} iter {}", n, i
                        );
                    }
                }
            }
        }
    }

    /// Unrolled loops map and verify end to end (unrolling is semantics-
    /// preserving and the mapper treats the unrolled body like any DFG).
    #[test]
    fn unrolled_random_loops_map_and_verify(seed in any::<u64>()) {
        use sat_mapit::dfg::transform::unroll;
        let dfg = random_dfg(&RandomDfgConfig {
            nodes: 6,
            back_edges: 1,
            memory_ops: false,
            seed,
        });
        let unrolled = unroll(&dfg, 2);
        let cgra = Cgra::square(3);
        let mapper_config = MapperConfig { max_ii: 8, ..MapperConfig::default() };
        let outcome = Mapper::new(&unrolled, &cgra).with_config(mapper_config).run();
        if let Ok(mapped) = outcome.result {
            let sim = verify_mapping(&unrolled, &cgra, &mapped, vec![2; 64], 4);
            prop_assert!(sim.is_ok(), "{:?}", sim.err());
        }
    }

    /// Cache-key sensitivity: mutating any single edge of a DFG — its
    /// endpoint, operand slot, loop distance or live-in — must change the
    /// engine fingerprint, or the result cache would serve a different
    /// loop's mapping.
    #[test]
    fn single_edge_mutation_changes_fingerprint(
        config in dfg_config(),
        edge_sel in any::<u64>(),
        field_sel in 0u8..4,
    ) {
        use sat_mapit::engine::{fingerprint::fingerprint, EngineConfig};

        let dfg = random_dfg(&config);
        if dfg.num_edges() == 0 {
            return Ok(());
        }
        let target = (edge_sel as usize) % dfg.num_edges();

        // Rebuild the DFG node-for-node, edge-for-edge, with exactly one
        // field of one edge perturbed.
        let mut mutated = sat_mapit::dfg::Dfg::new(dfg.name());
        for n in dfg.node_ids() {
            let node = dfg.node(n);
            mutated.add_node_labeled(node.op, node.imm, node.label.clone());
        }
        for (i, (_, e)) in dfg.edges().enumerate() {
            let mut src = e.src;
            let mut operand = e.operand;
            let mut distance = e.distance;
            let mut init = e.init;
            if i == target {
                match field_sel {
                    0 => operand = operand.wrapping_add(1),
                    1 => distance += 1,
                    2 => init = init.wrapping_add(1),
                    _ => src = sat_mapit::dfg::NodeId((src.0 + 1) % dfg.num_nodes() as u32),
                }
            }
            if distance > 0 {
                mutated.add_back_edge(src, e.dst, operand, distance, init);
            } else {
                mutated.add_edge(src, e.dst, operand);
            }
        }

        let cgra = Cgra::square(3);
        let engine_config = EngineConfig::default();
        let original = fingerprint(&dfg, &cgra, &engine_config);
        let changed = fingerprint(&mutated, &cgra, &engine_config);
        // Some mutations are not representable (an init tweak on a
        // distance-0 edge is dropped by `add_edge`; endpoint arithmetic
        // can wrap onto the original). Every mutation that actually
        // changed the edge must change the hash.
        let identical = mutated
            .edges()
            .nth(target)
            .map(|(_, e)| (e.src, e.dst, e.operand, e.distance, e.init))
            == dfg
                .edges()
                .nth(target)
                .map(|(_, e)| (e.src, e.dst, e.operand, e.distance, e.init));
        if !identical {
            prop_assert_ne!(original, changed, "edge {} field {}", target, field_sel);
        }
    }

    /// Timeouts never panic and always produce a coherent failure.
    #[test]
    fn zero_timeout_is_graceful(config in dfg_config()) {
        let dfg = random_dfg(&config);
        let cgra = Cgra::square(2);
        let outcome = Mapper::new(&dfg, &cgra)
            .with_timeout(std::time::Duration::ZERO)
            .run();
        let graceful = matches!(
            outcome.result,
            Err(MapFailure::Timeout { .. }) | Err(MapFailure::InvalidDfg(_))
        );
        prop_assert!(graceful);
    }
}
