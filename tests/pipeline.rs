//! End-to-end pipeline tests: every benchmark kernel is mapped, validated,
//! register-allocated, executed on the machine model, and compared against
//! reference semantics.

use sat_mapit::cgra::Cgra;
use sat_mapit::core::{validate_mapping, Mapper, MapperConfig};
use sat_mapit::kernels;
use sat_mapit::schedule::mii;
use sat_mapit::sim::verify_mapping;
use std::time::Duration;

fn map_and_verify(kernel: &kernels::Kernel, cgra: &Cgra) -> u32 {
    let outcome = Mapper::new(&kernel.dfg, cgra)
        .with_timeout(Duration::from_secs(120))
        .run();
    let mapped = outcome
        .result
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), cgra));
    assert!(
        validate_mapping(&kernel.dfg, cgra, &mapped.mapping).is_ok(),
        "{} on {}",
        kernel.name(),
        cgra
    );
    assert!(mapped.ii() >= mii(&kernel.dfg, cgra).unwrap());
    verify_mapping(
        &kernel.dfg,
        cgra,
        &mapped,
        kernel.memory.clone(),
        kernel.sim_iterations,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), cgra));
    mapped.ii()
}

#[test]
fn all_kernels_map_and_verify_on_4x4() {
    let cgra = Cgra::square(4);
    for kernel in kernels::all() {
        let ii = map_and_verify(&kernel, &cgra);
        assert!(
            ii <= 16,
            "{}: II={ii} suspiciously high on 4x4",
            kernel.name()
        );
    }
}

#[test]
fn all_kernels_map_and_verify_on_3x3() {
    let cgra = Cgra::square(3);
    for kernel in kernels::all() {
        let _ = map_and_verify(&kernel, &cgra);
    }
}

#[test]
fn small_kernels_map_and_verify_on_2x2() {
    // The tight 2x2 configuration, where the paper highlights SAT-MapIt's
    // advantage. Restrict to the smaller kernels to keep the suite fast.
    let cgra = Cgra::square(2);
    for name in ["srand", "basicmath", "gsm", "stringsearch"] {
        let kernel = kernels::by_name(name).unwrap();
        let _ = map_and_verify(&kernel, &cgra);
    }
}

#[test]
fn sat_ii_is_minimal_for_its_window_model_on_srand() {
    // Exactness: the mapper returns the first satisfiable II, so mapping
    // with start_ii below the achieved II must be UNSAT at every
    // intermediate II. Verify for a small kernel by checking that the
    // attempt trace contains only UNSAT outcomes before the final success.
    use sat_mapit::core::AttemptOutcome;
    let kernel = kernels::by_name("srand").unwrap();
    let cgra = Cgra::square(3);
    let outcome = Mapper::new(&kernel.dfg, &cgra).run();
    let attempts = &outcome.attempts;
    assert!(!attempts.is_empty());
    for a in &attempts[..attempts.len() - 1] {
        assert!(
            matches!(
                a.outcome,
                AttemptOutcome::Unsat | AttemptOutcome::RegAllocFailed(_)
            ),
            "intermediate II {} must not map: {:?}",
            a.ii,
            a.outcome
        );
    }
    assert_eq!(attempts.last().unwrap().outcome, AttemptOutcome::Mapped);
}

#[test]
fn mapper_works_on_torus_and_mesh8_extensions() {
    use sat_mapit::cgra::Topology;
    let kernel = kernels::by_name("basicmath").unwrap();
    for topo in [Topology::Torus4, Topology::Mesh8] {
        let cgra = Cgra::square(3).with_topology(topo);
        let outcome = Mapper::new(&kernel.dfg, &cgra)
            .with_timeout(Duration::from_secs(60))
            .run();
        let mapped = outcome.result.unwrap_or_else(|e| panic!("{topo:?}: {e}"));
        verify_mapping(
            &kernel.dfg,
            &cgra,
            &mapped,
            kernel.memory.clone(),
            kernel.sim_iterations,
        )
        .unwrap_or_else(|e| panic!("{topo:?}: {e}"));
    }
}

#[test]
fn richer_interconnect_never_hurts_ii() {
    // Mesh8 strictly extends Mesh4 connectivity, so the optimal II can
    // only improve or stay equal.
    let kernel = kernels::by_name("gsm").unwrap();
    let mesh4 = Cgra::square(3);
    let mesh8 = Cgra::square(3).with_topology(sat_mapit::cgra::Topology::Mesh8);
    let ii4 = Mapper::new(&kernel.dfg, &mesh4).run().ii().unwrap();
    let ii8 = Mapper::new(&kernel.dfg, &mesh8).run().ii().unwrap();
    assert!(ii8 <= ii4, "mesh8 II {ii8} vs mesh4 II {ii4}");
}

#[test]
fn left_column_memory_policy_still_maps() {
    use sat_mapit::cgra::MemoryPolicy;
    let kernel = kernels::by_name("basicmath").unwrap();
    let cgra = Cgra::square(3).with_memory_policy(MemoryPolicy::LeftColumn);
    let outcome = Mapper::new(&kernel.dfg, &cgra)
        .with_timeout(Duration::from_secs(60))
        .run();
    let mapped = outcome.result.expect("maps with restricted memory");
    // Memory ops really are on the left column.
    for n in kernel.dfg.node_ids() {
        if kernel.dfg.node(n).op.is_memory() {
            let (_, col) = cgra.coords(mapped.mapping.placement(n).pe);
            assert_eq!(col, 0, "node {n}");
        }
    }
    verify_mapping(
        &kernel.dfg,
        &cgra,
        &mapped,
        kernel.memory.clone(),
        kernel.sim_iterations,
    )
    .expect("verified");
}

#[test]
fn paper_strict_windows_also_map_deep_kernels() {
    // With SlackPolicy::Zero (the paper's exact formulation) deep kernels
    // still map; shallow ones may not — which is exactly why the default
    // adds slack.
    use sat_mapit::core::SlackPolicy;
    let kernel = kernels::by_name("bitcount").unwrap();
    let cgra = Cgra::square(4);
    let config = MapperConfig {
        slack: SlackPolicy::Zero,
        timeout: Some(Duration::from_secs(60)),
        ..MapperConfig::default()
    };
    let outcome = Mapper::new(&kernel.dfg, &cgra).with_config(config).run();
    let mapped = outcome.result.expect("bitcount maps with strict windows");
    verify_mapping(
        &kernel.dfg,
        &cgra,
        &mapped,
        kernel.memory.clone(),
        kernel.sim_iterations,
    )
    .expect("verified");
}
