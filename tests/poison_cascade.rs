//! Regression coverage for the lock-poison cascade (PR 7): a panic
//! inside one race worker must cost exactly that request, not the
//! engine. Before the fix, the panicking worker poisoned the race's
//! shared mutex and every later `.lock().expect(..)` in the engine —
//! `cache_stats`, the next `map` call — panicked in sympathy, turning
//! one bad solve into a dead daemon.
//!
//! The fault is injected through `EngineConfig::panic_on_name`
//! (`#[doc(hidden)]`, test-only): every race-worker attempt for a DFG
//! with that name panics before touching the solver.

use sat_mapit::cgra::Cgra;
use sat_mapit::core::MapFailure;
use sat_mapit::dfg::{Dfg, Op};
use sat_mapit::engine::{Engine, EngineConfig};
use sat_mapit::kernels;

fn engine_with_fault(victim: &str) -> Engine {
    Engine::new(EngineConfig {
        panic_on_name: Some(victim.into()),
        ..EngineConfig::default()
    })
}

/// A three-node chain that maps in well under a second — the tests
/// below care about engine liveness, not solver throughput.
fn tiny(name: &str) -> Dfg {
    let mut dfg = Dfg::new(name);
    let a = dfg.add_const(3);
    let b = dfg.add_node(Op::Neg);
    let c = dfg.add_node(Op::Abs);
    dfg.add_edge(a, b, 0);
    dfg.add_edge(b, c, 0);
    dfg
}

#[test]
fn injected_worker_panic_is_contained_to_one_request() {
    let cgra = Cgra::square(3);
    let victim = kernels::paper_example();
    let bystander = tiny("bystander");
    let engine = engine_with_fault(victim.dfg.name());

    // The injected request fails with `Internal`, not a process abort.
    let (outcome, cached) = engine.map(&victim.dfg, &cgra);
    let err = outcome
        .outcome
        .result
        .as_ref()
        .expect_err("injected panic must surface as a failure");
    assert!(
        matches!(err, MapFailure::Internal(msg) if msg.contains("panicked")),
        "expected Internal(panic message), got {err:?}"
    );
    assert!(!cached, "first solve cannot be a cache hit");

    // Engine telemetry still answers after the panic: these lock the
    // same mutexes the panicking worker's siblings held.
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 0);

    // A subsequent, unrelated request on the same engine maps normally.
    let (ok, _) = engine.map(&bystander, &cgra);
    assert!(
        ok.outcome.result.is_ok(),
        "bystander request must still map after the injected panic: {:?}",
        ok.outcome.result
    );

    // `Internal` is transient: the failed request is never memoized, so
    // retrying it solves again (and, with the fault still armed, fails
    // again) instead of replaying a cached panic as a cache hit.
    let (again, cached) = engine.map(&victim.dfg, &cgra);
    assert!(!cached, "Internal failures must not be served from cache");
    assert!(matches!(again.outcome.result, Err(MapFailure::Internal(_))));
    assert_eq!(
        engine.cache_stats().hits,
        0,
        "neither victim retry may count as a cache hit"
    );
}

#[test]
fn faulted_name_recovers_once_the_fault_is_gone() {
    // Same problem, fresh engine without the fault: the earlier failures
    // left nothing behind (no cache entry, no bound) that would stop a
    // healthy engine from mapping it.
    let cgra = Cgra::square(3);
    let victim = kernels::paper_example();

    let faulty = engine_with_fault(victim.dfg.name());
    let (outcome, _) = faulty.map(&victim.dfg, &cgra);
    assert!(outcome.outcome.result.is_err());

    let healthy = Engine::new(EngineConfig::default());
    let (outcome, _) = healthy.map(&victim.dfg, &cgra);
    assert!(
        outcome.outcome.result.is_ok(),
        "kernel must map once the fault is removed: {:?}",
        outcome.outcome.result
    );
}
