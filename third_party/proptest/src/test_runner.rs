//! Per-test runner state: deterministic RNG and case counting.

use crate::ProptestConfig;
use std::fmt;

/// Error raised by the `prop_assert*` macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A deterministic xorshift64* random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        // Multiply-shift: adequate uniformity for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// A runner for `config.cases` cases, seeded from the test name so each
    /// test explores a distinct but reproducible sequence.
    pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            cases: config.cases,
            rng: TestRng::new(seed),
        }
    }

    /// Number of cases this runner executes.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The shared random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
