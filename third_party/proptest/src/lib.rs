//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` is unavailable. This crate implements the subset of the API
//! the workspace's property tests use — `Strategy` with `prop_map` /
//! `prop_flat_map`, `any::<T>()`, ranged integer strategies, tuple and
//! `collection::vec` strategies, the `proptest!` macro and the
//! `prop_assert*` family — backed by a deterministic xorshift RNG seeded
//! per test. Failing cases are reported with their case index; shrinking
//! is not implemented. Swapping in the real `proptest` is a one-line
//! change in the workspace manifest.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Configuration for a `proptest!` block (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )*
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            runner.cases(),
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: {} == {} (left: {:?}, right: {:?})",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Fails the current property-test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}",
                            stringify!($left),
                            stringify!($right)
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}
