//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`]: a fixed size or a size range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for vectors whose elements are drawn from `element` and whose
/// length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
