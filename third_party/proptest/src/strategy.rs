//! The `Strategy` trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
