//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real crates.io
//! `serde_derive` (and its `syn`/`quote` dependency tree) is unavailable.
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on plain-old-data types — nothing serializes at runtime — so these
//! derives simply expand to nothing. Swapping in the real `serde` is a
//! one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
