//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` is unavailable. This crate implements the subset of the API
//! the workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — and
//! reports mean wall-clock time per iteration to stdout. There is no
//! statistical analysis, warm-up calibration or HTML report; swapping in
//! the real `criterion` is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id such as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting only of the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and accumulates timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run, then the measured samples.
        black_box(f());
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "bench {id:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        samples.len()
    );
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run(id, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().id;
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (formatting parity with real criterion).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.default_sample_size,
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
