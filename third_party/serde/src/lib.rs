//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real crates.io
//! `serde` is unavailable. The workspace derives `Serialize`/`Deserialize`
//! on its data types for downstream consumers but never serializes inside
//! this repository, so marker traits and no-op derives are sufficient.
//! Swapping in the real `serde` is a one-line change in the workspace
//! manifest and requires no source edits.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
